//! # fpisa-pipeline
//!
//! The FPISA floating-point add/read dataflow of the paper's Fig. 2,
//! compiled onto the PISA switch simulator from `fpisa-pisa` and
//! differentially tested — bit for bit — against the reference model in
//! `fpisa-core`.
//!
//! Construction goes through [`PipelineSpec`], a validated builder that
//! picks the variant, floating-point format, register width, guard bits,
//! read-out rounding and slot count; the program builder computes every
//! field width, bias constant and shift-table entry count from it.
//! [`FpisaPipeline`] wraps a [`fpisa_pisa::Switch`] running that program:
//! per aggregation slot, a biased exponent register entry and a signed
//! mantissa register entry (Fig. 3), updated by ADD packets and
//! renormalized by READ packets using only match tables and integer ALU
//! operations. Three [`program::PipelineVariant`]s cover the paper's
//! hardware spectrum — FPISA-A on unmodified Tofino
//! (shift-by-match-table, overwrite past the headroom), FPISA-A with the
//! proposed 2-operand shift ALU, and full FPISA with the RSAW stateful
//! unit.
//!
//! The [`report`] module produces the Table 3-style resource accounting
//! for each variant — and, via [`report::table3_formats`], for each
//! format, showing how the Tofino shift tables shrink for FP16/BF16 —
//! rendered through the shared `fpisa-hw` report machinery.
//!
//! ## Example
//!
//! ```
//! use fpisa_core::{FpFormat, ReadRounding};
//! use fpisa_pipeline::{FpisaPipeline, PipelineSpec, PipelineVariant};
//!
//! // The FP32 default (Fig. 4's worked example).
//! let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 16).unwrap();
//! pipe.add_f32(0, 3.0).unwrap();
//! pipe.add_f32(0, 1.0).unwrap();
//! assert_eq!(pipe.read_f32(0).unwrap(), 4.0);
//!
//! // BF16 on the wire, guard bits, round-to-nearest-even read-out.
//! let spec = PipelineSpec::new(PipelineVariant::TofinoA)
//!     .format(FpFormat::BF16)
//!     .guard_bits(2)
//!     .read_rounding(ReadRounding::NearestEven)
//!     .slots(16);
//! let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
//! pipe.add_value(0, 3.0).unwrap();
//! pipe.add_value(0, 1.0).unwrap();
//! assert_eq!(pipe.read_f64(0).unwrap(), 4.0);
//! ```
//!
//! ## Scope
//!
//! The program covers the format space of §3.3 and Appendix A.1: any
//! [`fpisa_core::FpFormat`] that packs into 32 bits (FP32, FP16, BF16,
//! custom `(e, m)` shapes) in registers up to 32 bits wide, with optional
//! guard bits and either truncating or round-to-nearest-even read-out
//! (`ReadRounding::TowardNegInf` has no pipeline lowering and is rejected
//! at spec validation). `FpisaPipeline::new` keeps the paper's deployed
//! default — FP32 in 32-bit registers, no guard bits, truncating
//! read-out. Inputs must be finite: a PISA switch has no NaN semantics,
//! and the paper assumes hosts send finite values.

pub mod program;
pub mod report;
pub mod spec;

pub use program::{build_program, Arrays, Fields, PipelineVariant, OP_ADD, OP_READ};
pub use report::{render_stage_breakdown, render_table3, table3, table3_formats, Table3Row};
pub use spec::{format_name, PipelineSpec, SpecError, MAX_SLOTS};

use fpisa_core::{FpFormat, FpisaConfig};
use fpisa_pisa::{ProgramError, ResourceReport, RuntimeError, Switch, SwitchProgram};

/// A running FPISA pipeline: the Fig. 2 program instantiated on the switch
/// simulator for one [`PipelineSpec`].
#[derive(Debug, Clone)]
pub struct FpisaPipeline {
    switch: Switch,
    fields: Fields,
    arrays: Arrays,
    spec: PipelineSpec,
    cfg: FpisaConfig,
}

impl FpisaPipeline {
    /// Build and validate the program for a spec, with zeroed slots. This
    /// is the single constructor every configuration goes through;
    /// [`FpisaPipeline::new`] is a thin FP32 convenience over it.
    pub fn from_spec(spec: PipelineSpec) -> Result<Self, SpecError> {
        // `core_config` validates the spec, so the program can be built
        // directly without a second validation pass.
        let cfg = spec.core_config()?;
        let (program, fields, arrays) = program::build_for_spec(&spec, &cfg);
        let switch = Switch::new(program)?;
        Ok(FpisaPipeline {
            switch,
            fields,
            arrays,
            spec,
            cfg,
        })
    }

    /// Build the paper's default configuration for a variant — FP32 in
    /// 32-bit registers, no guard bits, truncating read-out. Panics on
    /// slot counts outside the 16-bit slot field (use
    /// [`FpisaPipeline::from_spec`] for fallible construction).
    pub fn new(variant: PipelineVariant, slots: usize) -> Result<Self, ProgramError> {
        Self::from_spec(PipelineSpec::new(variant).slots(slots)).map_err(|e| match e {
            SpecError::Program(p) => p,
            other => panic!("{other}"),
        })
    }

    /// The spec this pipeline was built from.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The variant this pipeline runs.
    pub fn variant(&self) -> PipelineVariant {
        self.spec.variant()
    }

    /// Number of aggregation slots.
    pub fn slots(&self) -> usize {
        self.spec.slot_count()
    }

    /// The floating-point format on the wire.
    pub fn format(&self) -> FpFormat {
        self.cfg.format
    }

    /// The `fpisa-core` configuration this pipeline reproduces — the
    /// reference model the differential suite instantiates.
    pub fn core_config(&self) -> FpisaConfig {
        self.cfg
    }

    /// The underlying validated switch program.
    pub fn switch_program(&self) -> &SwitchProgram {
        self.switch.program()
    }

    /// The PHV field handles (for custom packet injection in tests).
    pub fn fields(&self) -> &Fields {
        &self.fields
    }

    /// Resource accounting of the running program.
    pub fn resource_report(&self) -> ResourceReport {
        ResourceReport::of(self.switch.program())
    }

    /// Check a slot index against the spec, mirroring the switch's own
    /// register-range runtime error for out-of-range packets.
    fn check_slot(&self, slot: usize) -> Result<(), RuntimeError> {
        if slot >= self.slots() {
            return Err(RuntimeError::IndexOutOfRange {
                detail: format!(
                    "slot {slot} out of range for pipeline with {} slots",
                    self.slots()
                ),
            });
        }
        Ok(())
    }

    /// Process an ADD packet: fold a packed value of the spec's format
    /// into `slot`. Bits above the format's width are ignored, exactly as
    /// [`FpFormat::unpack`] masks them.
    ///
    /// Non-finite inputs are the caller's responsibility (see the crate
    /// docs); the switch will process their bit patterns like any others.
    pub fn add_bits(&mut self, slot: usize, bits: u64) -> Result<(), RuntimeError> {
        self.check_slot(slot)?;
        let mut phv = self.switch.phv();
        phv.set(self.fields.op, OP_ADD);
        phv.set(self.fields.slot, slot as u64);
        phv.set(self.fields.value, bits);
        self.switch.run(&mut phv)?;
        Ok(())
    }

    /// Process an ADD packet carrying an `f32`. Panics on non-FP32 specs
    /// — silently truncating 32 bits into a narrower value field would
    /// aggregate garbage; use [`FpisaPipeline::add_value`] or
    /// [`FpisaPipeline::add_bits`] there.
    pub fn add_f32(&mut self, slot: usize, x: f32) -> Result<(), RuntimeError> {
        assert_eq!(
            self.cfg.format,
            FpFormat::FP32,
            "add_f32 on a non-FP32 pipeline"
        );
        self.add_bits(slot, x.to_bits() as u64)
    }

    /// Process an ADD packet carrying an `f64`, first encoding it into the
    /// spec's format with round-to-nearest-even (models the host casting
    /// to FP16/BF16 before transmission, §5.2.2).
    ///
    /// The input must stay within the format's finite range: a finite
    /// `f64` beyond [`FpFormat::max_finite`] encodes to an infinity bit
    /// pattern, which the switch folds in like any other bits (see the
    /// crate docs) while the reference model would reject it — clamp at
    /// the host first, as the paper's transports do.
    pub fn add_value(&mut self, slot: usize, x: f64) -> Result<(), RuntimeError> {
        self.add_bits(slot, self.cfg.format.encode(x))
    }

    /// Process a READ packet: renormalize `slot` into packed bits of the
    /// spec's format. Reading does not modify the slot.
    pub fn read_bits(&mut self, slot: usize) -> Result<u64, RuntimeError> {
        self.check_slot(slot)?;
        let mut phv = self.switch.phv();
        phv.set(self.fields.op, OP_READ);
        phv.set(self.fields.slot, slot as u64);
        self.switch.run(&mut phv)?;
        Ok(phv.get(self.fields.result))
    }

    /// Process a READ packet and decode the result. Panics on non-FP32
    /// specs; use [`FpisaPipeline::read_f64`] or
    /// [`FpisaPipeline::read_bits`] there.
    pub fn read_f32(&mut self, slot: usize) -> Result<f32, RuntimeError> {
        assert_eq!(
            self.cfg.format,
            FpFormat::FP32,
            "read_f32 on a non-FP32 pipeline"
        );
        Ok(f32::from_bits(self.read_bits(slot)? as u32))
    }

    /// Process a READ packet and decode the result to `f64`, whatever the
    /// format.
    pub fn read_f64(&mut self, slot: usize) -> Result<f64, RuntimeError> {
        let bits = self.read_bits(slot)?;
        Ok(self.cfg.format.decode(bits))
    }

    /// Raw register state of a slot: `(biased exponent, signed mantissa)`.
    /// `(0, 0)` is an empty slot. Control-plane access used by the
    /// differential tests to compare against the reference model.
    pub fn register_state(&self, slot: usize) -> (u32, i64) {
        (
            self.switch.register(self.arrays.exponent, slot) as u32,
            self.switch.register(self.arrays.mantissa, slot),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpisa_core::ReadRounding;

    #[test]
    fn fig4_worked_example_on_every_variant() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 4).unwrap();
            pipe.add_f32(0, 3.0).unwrap();
            assert_eq!(pipe.read_f32(0).unwrap(), 3.0, "{v:?}");
            pipe.add_f32(0, 1.0).unwrap();
            // The register is denormalized (0b10.0 x 2^1)...
            let (e, m) = pipe.register_state(0);
            assert_eq!(e, 128, "{v:?}");
            assert_eq!(m, 0b100 << 22, "{v:?}");
            // ...but reads back as the canonical 4.0.
            assert_eq!(pipe.read_f32(0).unwrap(), 4.0, "{v:?}");
        }
    }

    #[test]
    fn empty_and_zero_slots_read_zero() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 4).unwrap();
            assert_eq!(pipe.read_bits(1).unwrap(), 0, "{v:?} empty slot");
            pipe.add_f32(2, 0.0).unwrap();
            pipe.add_f32(2, -0.0).unwrap();
            assert_eq!(pipe.read_bits(2).unwrap(), 0, "{v:?} zero inputs skip");
            assert_eq!(pipe.register_state(2), (0, 0));
        }
    }

    #[test]
    fn slots_are_independent() {
        let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 8).unwrap();
        pipe.add_f32(1, 1.5).unwrap();
        pipe.add_f32(5, -2.25).unwrap();
        pipe.add_f32(1, 0.5).unwrap();
        assert_eq!(pipe.read_f32(1).unwrap(), 2.0);
        assert_eq!(pipe.read_f32(5).unwrap(), -2.25);
        assert_eq!(pipe.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn out_of_range_slots_error_instead_of_panicking() {
        // Regression test: `add_bits`/`read_bits` used to `assert!` on a
        // bad slot while every other failure returned `Result`.
        let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 4).unwrap();
        for bad in [4usize, 5, 1 << 16, usize::MAX] {
            assert!(
                matches!(
                    pipe.add_bits(bad, 0x3F80_0000),
                    Err(RuntimeError::IndexOutOfRange { .. })
                ),
                "add to slot {bad} must error"
            );
            assert!(
                matches!(
                    pipe.read_bits(bad),
                    Err(RuntimeError::IndexOutOfRange { .. })
                ),
                "read of slot {bad} must error"
            );
        }
        // The failed packets must not have disturbed any state.
        for slot in 0..4 {
            assert_eq!(pipe.register_state(slot), (0, 0));
        }
        // In-range packets still work afterwards.
        pipe.add_f32(3, 2.5).unwrap();
        assert_eq!(pipe.read_f32(3).unwrap(), 2.5);
    }

    #[test]
    fn overwrite_happens_on_tofino_but_not_full() {
        let mut a = FpisaPipeline::new(PipelineVariant::TofinoA, 1).unwrap();
        a.add_f32(0, 1.0).unwrap();
        a.add_f32(0, 512.0).unwrap();
        assert_eq!(
            a.read_f32(0).unwrap(),
            512.0,
            "FPISA-A overwrites past the headroom"
        );

        let mut fp = FpisaPipeline::new(PipelineVariant::ExtendedFull, 1).unwrap();
        fp.add_f32(0, 1.0).unwrap();
        fp.add_f32(0, 512.0).unwrap();
        assert_eq!(
            fp.read_f32(0).unwrap(),
            513.0,
            "RSAW keeps the stored value"
        );
    }

    #[test]
    fn subnormals_and_cancellation() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 2).unwrap();
            let tiny = f32::from_bits(7);
            pipe.add_f32(0, tiny).unwrap();
            pipe.add_f32(0, tiny).unwrap();
            assert_eq!(pipe.read_bits(0).unwrap(), 14, "{v:?} subnormal sum");

            pipe.add_f32(1, 1.0).unwrap();
            pipe.add_f32(1, -(1.0 - 2f32.powi(-20))).unwrap();
            assert_eq!(
                pipe.read_f32(1).unwrap(),
                2f32.powi(-20),
                "{v:?} cancellation"
            );
        }
    }

    #[test]
    fn fp16_and_bf16_pipelines_sum_exactly_representable_values() {
        for format in [FpFormat::FP16, FpFormat::BF16] {
            for v in PipelineVariant::all() {
                let spec = PipelineSpec::new(v).format(format).slots(2);
                let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
                for x in [1.0f64, 0.5, 2.0, -0.25, 3.0] {
                    pipe.add_value(0, x).unwrap();
                }
                assert_eq!(pipe.read_f64(0).unwrap(), 6.25, "{v:?} {format:?}");
            }
        }
    }

    #[test]
    fn nearest_even_readout_rounds_ties_to_even() {
        // Accumulate (2^24 + 3) * 2^-23 into an FP32 slot with guard bits:
        // truncation keeps 2 + 2^-22, nearest-even rounds the half-ulp tie
        // up to 2 + 2^-21 (the `rounding_modes_differ_on_dropped_bits`
        // case of fpisa-core, now through the packet pipeline).
        for v in PipelineVariant::all() {
            for (rounding, expect) in [
                (ReadRounding::TowardZero, 2.0 + 2.0 * f32::EPSILON),
                (ReadRounding::NearestEven, 2.0 + 4.0 * f32::EPSILON),
            ] {
                let spec = PipelineSpec::new(v)
                    .guard_bits(2)
                    .read_rounding(rounding)
                    .slots(1);
                let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
                pipe.add_f32(0, 2.0).unwrap();
                pipe.add_f32(0, 3.0 * 2f32.powi(-23)).unwrap();
                assert_eq!(pipe.read_f32(0).unwrap(), expect, "{v:?} {rounding:?}");
            }
        }
    }

    #[test]
    fn reads_do_not_disturb_state() {
        let mut pipe = FpisaPipeline::new(PipelineVariant::ExtendedFull, 1).unwrap();
        pipe.add_f32(0, 0.1).unwrap();
        let before = pipe.register_state(0);
        for _ in 0..5 {
            pipe.read_bits(0).unwrap();
        }
        assert_eq!(pipe.register_state(0), before);
    }
}
