//! # fpisa-pipeline
//!
//! The FPISA floating-point add/read dataflow of the paper's Fig. 2,
//! compiled onto the PISA switch simulator from `fpisa-pisa` and
//! differentially tested — bit for bit — against the reference model in
//! `fpisa-core`.
//!
//! Construction goes through [`PipelineSpec`], a validated builder that
//! picks the variant, floating-point format, register width, guard bits,
//! read-out rounding and slot count; the program builder computes every
//! field width, bias constant and shift-table entry count from it.
//! [`FpisaPipeline`] wraps a [`fpisa_pisa::Switch`] running that program:
//! per aggregation slot, a biased exponent register entry and a signed
//! mantissa register entry (Fig. 3), updated by ADD packets and
//! renormalized by READ packets using only match tables and integer ALU
//! operations. Three [`program::PipelineVariant`]s cover the paper's
//! hardware spectrum — FPISA-A on unmodified Tofino
//! (shift-by-match-table, overwrite past the headroom), FPISA-A with the
//! proposed 2-operand shift ALU, and full FPISA with the RSAW stateful
//! unit.
//!
//! The [`report`] module produces the Table 3-style resource accounting
//! for each variant — and, via [`report::table3_formats`], for each
//! format, showing how the Tofino shift tables shrink for FP16/BF16 —
//! rendered through the shared `fpisa-hw` report machinery.
//!
//! Packets execute on one of two engines selected by
//! [`PipelineSpec::engine`] — the pre-resolved
//! [`fpisa_pisa::CompiledSwitch`] fast path by default, or the
//! interpreting [`fpisa_pisa::Switch`] reference — with bit-for-bit
//! identical results; [`FpisaPipeline::add_batch`] and
//! [`FpisaPipeline::read_batch`] push whole packet slices through a
//! reusable PHV buffer for million-packet aggregation runs.
//!
//! ## Example
//!
//! ```
//! use fpisa_core::{FpFormat, ReadRounding};
//! use fpisa_pipeline::{FpisaPipeline, PipelineSpec, PipelineVariant};
//!
//! // The FP32 default (Fig. 4's worked example).
//! let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 16).unwrap();
//! pipe.add_f32(0, 3.0).unwrap();
//! pipe.add_f32(0, 1.0).unwrap();
//! assert_eq!(pipe.read_f32(0).unwrap(), 4.0);
//!
//! // BF16 on the wire, guard bits, round-to-nearest-even read-out.
//! let spec = PipelineSpec::new(PipelineVariant::TofinoA)
//!     .format(FpFormat::BF16)
//!     .guard_bits(2)
//!     .read_rounding(ReadRounding::NearestEven)
//!     .slots(16);
//! let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
//! pipe.add_value(0, 3.0).unwrap();
//! pipe.add_value(0, 1.0).unwrap();
//! assert_eq!(pipe.read_f64(0).unwrap(), 4.0);
//! ```
//!
//! ## Scope
//!
//! The program covers the format space of §3.3 and Appendix A.1: any
//! [`fpisa_core::FpFormat`] that packs into 32 bits (FP32, FP16, BF16,
//! custom `(e, m)` shapes) in registers up to 32 bits wide, with optional
//! guard bits and either truncating or round-to-nearest-even read-out
//! (`ReadRounding::TowardNegInf` has no pipeline lowering and is rejected
//! at spec validation). `FpisaPipeline::new` keeps the paper's deployed
//! default — FP32 in 32-bit registers, no guard bits, truncating
//! read-out. Inputs must be finite: a PISA switch has no NaN semantics,
//! and the paper assumes hosts send finite values.

pub mod program;
pub mod report;
pub mod spec;

pub use program::{build_program, Arrays, Fields, PipelineVariant, OP_ADD, OP_READ};
pub use report::{render_stage_breakdown, render_table3, table3, table3_formats, Table3Row};
pub use spec::{format_name, ExecEngine, PipelineSpec, SpecError, MAX_SLOTS};

pub use fpisa_pisa::PhaseCOrder;

use fpisa_core::{FpFormat, FpisaConfig};
use fpisa_pisa::{
    prove_shard_safety, verify_program, AnalysisLevel, AnalysisReport, BatchLanes, CompiledSwitch,
    Phv, ProgramError, ResourceReport, RuntimeError, ShardedSwitch, SlotRange, Switch,
    SwitchProgram,
};

/// Packets per internal batch chunk: small enough that the whole PHV
/// buffer stays L1-resident (64 packets × ~50 containers × 8 B ≈ 26 KiB),
/// large enough to amortize the per-call overhead of the batch APIs.
const BATCH_CHUNK: usize = 64;

/// Packets per chunk on the compiled engine's **SoA lanes** path. The
/// working set there is per-column (one flat `u64` lane per PHV field,
/// traversed sequentially), not per-packet, so the chunk can be larger
/// than [`BATCH_CHUNK`] — each column of 256 packets is 2 KiB, and a
/// bigger chunk amortizes the per-table dispatch across more packets.
const SOA_CHUNK: usize = 256;

/// Packets per batch chunk on the **sharded** engine: buckets are handed
/// to pool workers per chunk, so the chunk must be big enough to amortize
/// the hand-off across all shards (8192 packets × ~50 containers × 8 B ≈
/// 3 MiB — cache residency matters less than core utilization here).
const SHARDED_BATCH_CHUNK: usize = 8192;

/// Run the static analyzer over a generated program per the spec's
/// [`AnalysisLevel`]: `Off` skips it, `Warn` runs it without failing,
/// `Deny` (the default) rejects error-severity findings with
/// [`SpecError::Analysis`].
fn verify_for_spec(spec: &PipelineSpec, program: &SwitchProgram) -> Result<(), SpecError> {
    if spec.analysis_level() == AnalysisLevel::Off {
        return Ok(());
    }
    let report = verify_program(program);
    if spec.analysis_level() == AnalysisLevel::Deny && !report.is_clean() {
        return Err(SpecError::Analysis {
            errors: report.errors().count(),
            first: report
                .errors()
                .next()
                .map(ToString::to_string)
                .unwrap_or_default(),
        });
    }
    Ok(())
}

/// Lower one program with the spec's compiled-engine tuning applied:
/// split-key LUT width at compile time, SIMD kernels and Phase C
/// ordering as post-compile knobs. Every combination is bit-for-bit
/// identical; these only move work between execution strategies.
fn compile_for_spec(
    spec: &PipelineSpec,
    program: &SwitchProgram,
) -> Result<CompiledSwitch, fpisa_pisa::ProgramError> {
    let mut c = match spec.split_lut_width() {
        Some(bits) => CompiledSwitch::compile_tuned(program, bits)?,
        None => CompiledSwitch::compile(program)?,
    };
    if let Some(on) = spec.simd_kernels_enabled() {
        c.set_simd_kernels(on);
    }
    if let Some(order) = spec.phase_c_ordering() {
        c.set_phase_c_order(order);
    }
    Ok(c)
}

/// Which engine holds a pipeline's live register state and runs its
/// packets.
// One `Engine` exists per pipeline (never collections of them), so
// boxing the large compiled variant would buy no memory and add a
// pointer chase to every packet.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Engine {
    /// The interpreting reference engine (state lives in the `switch`
    /// field of [`FpisaPipeline`]).
    Interpreted,
    /// The single-core compiled fast path.
    Compiled(CompiledSwitch),
    /// The multi-core slot-range-sharded fast path.
    Sharded(ShardedSwitch),
}

/// A running FPISA pipeline: the Fig. 2 program instantiated on the switch
/// simulator for one [`PipelineSpec`].
///
/// Packets run on the spec's [`ExecEngine`] — the pre-resolved
/// [`CompiledSwitch`] by default, the interpreting [`Switch`] when the
/// spec asks for it — with bit-for-bit identical results (the differential
/// suite runs every configuration on both). One PHV is reused across
/// scalar packets, and [`FpisaPipeline::add_batch`] /
/// [`FpisaPipeline::read_batch`] push whole slices of packets through a
/// reusable buffer for bulk aggregation.
#[derive(Debug, Clone)]
pub struct FpisaPipeline {
    /// The interpreter: program holder, and the execution engine when the
    /// spec selects [`ExecEngine::Interpreted`].
    switch: Switch,
    /// The engine holding the live register state: the interpreter
    /// (`switch`), the single-core compiled fast path, or the sharded
    /// multi-core path when [`PipelineSpec::shards`] asks for one.
    engine: Engine,
    /// Scratch PHV reused by the scalar packet APIs.
    scratch: Phv,
    /// PHV buffer reused by the interpreted/sharded batch APIs, grown on
    /// first use.
    batch_buf: Vec<Phv>,
    /// SoA column buffer reused by the compiled engine's batch APIs:
    /// packets are written straight into field columns — no per-packet
    /// PHV construction, no transpose at the boundary.
    lanes: BatchLanes,
    fields: Fields,
    arrays: Arrays,
    spec: PipelineSpec,
    cfg: FpisaConfig,
}

impl FpisaPipeline {
    /// Build and validate the program for a spec, with zeroed slots. This
    /// is the single constructor every configuration goes through;
    /// [`FpisaPipeline::new`] is a thin FP32 convenience over it.
    pub fn from_spec(spec: PipelineSpec) -> Result<Self, SpecError> {
        // `core_config` validates the spec, so the program can be built
        // directly without a second validation pass.
        let cfg = spec.core_config()?;
        let (program, fields, arrays) = program::build_for_spec(&spec, &cfg);
        let ranges = spec.shard_ranges();
        // Verify-on-compile: the analyzer sees every program that will
        // actually execute — the full-space program here, each shard's
        // restricted program below.
        verify_for_spec(&spec, &program)?;
        let engine = match spec.execution_engine() {
            ExecEngine::Interpreted => Engine::Interpreted,
            ExecEngine::Compiled if ranges.len() > 1 => {
                // One compiled engine per shard, each built from the same
                // spec restricted to its range's slot count — identical
                // stages and tables, shard-local register arrays.
                let mut proofs = Vec::with_capacity(ranges.len());
                let engines = ranges
                    .iter()
                    .map(|r| {
                        let shard_spec = spec.slots(r.len).shards(1);
                        let (shard_program, _, _) = program::build_for_spec(&shard_spec, &cfg);
                        verify_for_spec(&shard_spec, &shard_program)?;
                        if let Ok(p) = prove_shard_safety(&shard_program, fields.slot) {
                            proofs.push(p);
                        }
                        compile_for_spec(&spec, &shard_program).map_err(SpecError::Program)
                    })
                    .collect::<Result<Vec<_>, SpecError>>()?;
                let mut sharded = ShardedSwitch::new(engines, ranges, fields.slot)
                    .expect("shard geometry derives from one validated spec");
                // Attach shard-safety proofs when every shard proved —
                // upgrading the dispatcher's bounds pre-scan into a
                // verified assumption. Built-in programs always prove;
                // partial proof sets just leave the dynamic behavior.
                if proofs.len() == sharded.shard_count() {
                    sharded = sharded
                        .attach_safety_proofs(&proofs)
                        .expect("proofs were produced for these exact shards");
                }
                if let Some(pm) = spec.parallel_min_threshold() {
                    sharded = sharded.with_parallel_min(pm);
                }
                if let Some(threads) = spec.parallelism_override() {
                    sharded = sharded.with_parallelism(threads);
                }
                Engine::Sharded(sharded)
            }
            ExecEngine::Compiled => Engine::Compiled(compile_for_spec(&spec, &program)?),
        };
        let switch = Switch::new(program)?;
        let scratch = switch.phv();
        Ok(FpisaPipeline {
            switch,
            engine,
            scratch,
            batch_buf: Vec::new(),
            lanes: BatchLanes::default(),
            fields,
            arrays,
            spec,
            cfg,
        })
    }

    /// Build the paper's default configuration for a variant — FP32 in
    /// 32-bit registers, no guard bits, truncating read-out. Panics on
    /// slot counts outside the 16-bit slot field (use
    /// [`FpisaPipeline::from_spec`] for fallible construction).
    pub fn new(variant: PipelineVariant, slots: usize) -> Result<Self, ProgramError> {
        Self::from_spec(PipelineSpec::new(variant).slots(slots)).map_err(|e| match e {
            SpecError::Program(p) => p,
            other => panic!("{other}"),
        })
    }

    /// The spec this pipeline was built from.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The variant this pipeline runs.
    pub fn variant(&self) -> PipelineVariant {
        self.spec.variant()
    }

    /// Number of aggregation slots.
    pub fn slots(&self) -> usize {
        self.spec.slot_count()
    }

    /// Number of shards the slot space is partitioned across (1 when the
    /// pipeline runs a single engine).
    pub fn shards(&self) -> usize {
        match &self.engine {
            Engine::Sharded(s) => s.shard_count(),
            _ => 1,
        }
    }

    /// The slot ranges the shards own — one full-space range on a
    /// single-engine pipeline.
    pub fn shard_ranges(&self) -> Vec<SlotRange> {
        match &self.engine {
            Engine::Sharded(s) => s.ranges().to_vec(),
            _ => vec![SlotRange::new(0, self.slots())],
        }
    }

    /// The floating-point format on the wire.
    pub fn format(&self) -> FpFormat {
        self.cfg.format
    }

    /// The `fpisa-core` configuration this pipeline reproduces — the
    /// reference model the differential suite instantiates.
    pub fn core_config(&self) -> FpisaConfig {
        self.cfg
    }

    /// The underlying validated switch program.
    pub fn switch_program(&self) -> &SwitchProgram {
        self.switch.program()
    }

    /// The PHV field handles (for custom packet injection in tests).
    pub fn fields(&self) -> &Fields {
        &self.fields
    }

    /// Resource accounting of the running program.
    pub fn resource_report(&self) -> ResourceReport {
        ResourceReport::of(self.switch.program())
    }

    /// Analyze the running program with the default configuration (see
    /// [`fpisa_pisa::verify_program`]) — regardless of the spec's
    /// [`AnalysisLevel`], so a `Warn`/`Off` pipeline can still be
    /// inspected after the fact.
    pub fn analysis_report(&self) -> AnalysisReport {
        verify_program(self.switch.program())
    }

    /// Whether the pipeline runs on the sharded engine with a
    /// shard-safety proof attached to every shard (see
    /// [`fpisa_pisa::prove_shard_safety`]); `false` for unsharded
    /// engines.
    pub fn shard_safety_proven(&self) -> bool {
        matches!(&self.engine, Engine::Sharded(s) if s.slot_safety_proven())
    }

    /// The runtime error an out-of-range slot produces, mirroring the
    /// switch's own register-range error.
    fn slot_error(&self, slot: usize) -> RuntimeError {
        RuntimeError::IndexOutOfRange {
            detail: format!(
                "slot {slot} out of range for pipeline with {} slots",
                self.slots()
            ),
        }
    }

    /// Check a slot index against the spec.
    fn check_slot(&self, slot: usize) -> Result<(), RuntimeError> {
        if slot >= self.slots() {
            return Err(self.slot_error(slot));
        }
        Ok(())
    }

    /// Packets per internal batch chunk for the active engine.
    fn batch_chunk(&self) -> usize {
        match &self.engine {
            Engine::Sharded(_) => SHARDED_BATCH_CHUNK,
            _ => BATCH_CHUNK,
        }
    }

    /// Grow the reusable batch buffer to one chunk of PHVs.
    fn ensure_batch_buf(&mut self) {
        let chunk = self.batch_chunk();
        if self.batch_buf.len() < chunk {
            let proto = self.switch.phv();
            self.batch_buf.resize(chunk, proto);
        }
    }

    /// Process an ADD packet: fold a packed value of the spec's format
    /// into `slot`. Bits above the format's width are ignored, exactly as
    /// [`FpFormat::unpack`] masks them.
    ///
    /// Non-finite inputs are the caller's responsibility (see the crate
    /// docs); the switch will process their bit patterns like any others.
    pub fn add_bits(&mut self, slot: usize, bits: u64) -> Result<(), RuntimeError> {
        self.check_slot(slot)?;
        self.scratch.clear();
        self.scratch.set(self.fields.op, OP_ADD);
        self.scratch.set(self.fields.slot, slot as u64);
        self.scratch.set(self.fields.value, bits);
        match &mut self.engine {
            Engine::Interpreted => self.switch.run(&mut self.scratch)?,
            Engine::Compiled(c) => c.run(&mut self.scratch)?,
            Engine::Sharded(s) => s.run(&mut self.scratch)?,
        };
        Ok(())
    }

    /// Process a slice of ADD packets — `(slot, packed bits)` pairs —
    /// through a reusable PHV buffer: the bulk-aggregation hot path, with
    /// no per-packet construction work at all.
    ///
    /// Slot indices are validated up front: on an out-of-range slot the
    /// call errors **before any packet runs**. (A mid-batch runtime fault,
    /// impossible for in-range FPISA packets, would leave the prior
    /// packets applied, like the equivalent scalar loop.)
    pub fn add_batch(&mut self, packets: &[(usize, u64)]) -> Result<(), RuntimeError> {
        self.validate_slots(packets.iter().map(|&(s, _)| s))?;
        self.run_batch_impl(
            packets.len(),
            |i| {
                let (slot, bits) = packets[i];
                (OP_ADD, slot as u64, bits)
            },
            None,
        )
    }

    /// [`FpisaPipeline::add_batch`] over `f32` values (FP32 specs only,
    /// like [`FpisaPipeline::add_f32`]).
    pub fn add_batch_f32(&mut self, packets: &[(usize, f32)]) -> Result<(), RuntimeError> {
        assert_eq!(
            self.cfg.format,
            FpFormat::FP32,
            "add_batch_f32 on a non-FP32 pipeline"
        );
        self.validate_slots(packets.iter().map(|&(s, _)| s))?;
        self.run_batch_impl(
            packets.len(),
            |i| {
                let (slot, x) = packets[i];
                (OP_ADD, slot as u64, u64::from(x.to_bits()))
            },
            None,
        )
    }

    /// Process an ADD packet carrying an `f32`. Panics on non-FP32 specs
    /// — silently truncating 32 bits into a narrower value field would
    /// aggregate garbage; use [`FpisaPipeline::add_value`] or
    /// [`FpisaPipeline::add_bits`] there.
    pub fn add_f32(&mut self, slot: usize, x: f32) -> Result<(), RuntimeError> {
        assert_eq!(
            self.cfg.format,
            FpFormat::FP32,
            "add_f32 on a non-FP32 pipeline"
        );
        self.add_bits(slot, x.to_bits() as u64)
    }

    /// Process an ADD packet carrying an `f64`, first encoding it into the
    /// spec's format with round-to-nearest-even (models the host casting
    /// to FP16/BF16 before transmission, §5.2.2).
    ///
    /// The input must stay within the format's finite range: a finite
    /// `f64` beyond [`FpFormat::max_finite`] encodes to an infinity bit
    /// pattern, which the switch folds in like any other bits (see the
    /// crate docs) while the reference model would reject it — clamp at
    /// the host first, as the paper's transports do.
    pub fn add_value(&mut self, slot: usize, x: f64) -> Result<(), RuntimeError> {
        self.add_bits(slot, self.cfg.format.encode(x))
    }

    /// Process a READ packet: renormalize `slot` into packed bits of the
    /// spec's format. Reading does not modify the slot.
    pub fn read_bits(&mut self, slot: usize) -> Result<u64, RuntimeError> {
        self.check_slot(slot)?;
        self.scratch.clear();
        self.scratch.set(self.fields.op, OP_READ);
        self.scratch.set(self.fields.slot, slot as u64);
        match &mut self.engine {
            Engine::Interpreted => self.switch.run(&mut self.scratch)?,
            Engine::Compiled(c) => c.run(&mut self.scratch)?,
            Engine::Sharded(s) => s.run(&mut self.scratch)?,
        };
        Ok(self.scratch.get(self.fields.result))
    }

    /// Process a READ packet per requested slot through the reusable PHV
    /// buffer, returning the packed read-outs in order. Slot indices are
    /// validated up front, like [`FpisaPipeline::add_batch`]; reading does
    /// not modify any slot.
    pub fn read_batch(&mut self, slots: &[usize]) -> Result<Vec<u64>, RuntimeError> {
        self.validate_slots(slots.iter().copied())?;
        let mut out = Vec::with_capacity(slots.len());
        self.run_batch_impl(
            slots.len(),
            |i| (OP_READ, slots[i] as u64, 0),
            Some(&mut out),
        )?;
        Ok(out)
    }

    /// [`FpisaPipeline::read_batch`] over the contiguous slot range
    /// `start..start + len` — the shape every chunked read-out protocol
    /// uses — without materializing a slot-index list.
    pub fn read_range(&mut self, start: usize, len: usize) -> Result<Vec<u64>, RuntimeError> {
        start
            .checked_add(len)
            .filter(|&e| e <= self.slots())
            .ok_or_else(|| self.slot_error(start.saturating_add(len).saturating_sub(1)))?;
        let mut out = Vec::with_capacity(len);
        self.run_batch_impl(len, |i| (OP_READ, (start + i) as u64, 0), Some(&mut out))?;
        Ok(out)
    }

    /// The shared batch loop. `fill` yields packet `i`'s `(op, slot,
    /// value)` input fields; when `collect` is given, every processed
    /// packet's `result` field is appended to it.
    ///
    /// On the compiled engine the packets are written straight into the
    /// reusable [`BatchLanes`] columns and executed there — no per-packet
    /// PHV is ever materialized, and read-outs come straight off the
    /// result column. The interpreted and sharded engines stream chunks
    /// of the reusable PHV buffer as before.
    fn run_batch_impl(
        &mut self,
        n: usize,
        fill: impl Fn(usize) -> (u64, u64, u64),
        mut collect: Option<&mut Vec<u64>>,
    ) -> Result<(), RuntimeError> {
        let fields = self.fields.clone();
        if let Engine::Compiled(c) = &mut self.engine {
            let lanes = &mut self.lanes;
            if lanes.capacity() == 0 {
                *lanes = BatchLanes::new(c.layout(), SOA_CHUNK.min(n.max(1)));
            }
            for start in (0..n).step_by(SOA_CHUNK) {
                let len = SOA_CHUNK.min(n - start);
                lanes.begin(len);
                for k in 0..len {
                    let (op, slot, value) = fill(start + k);
                    lanes.set(fields.op, k, op);
                    lanes.set(fields.slot, k, slot);
                    lanes.set(fields.value, k, value);
                }
                c.run_lanes(lanes)?;
                if let Some(out) = collect.as_deref_mut() {
                    out.extend((0..len).map(|k| lanes.get(fields.result, k)));
                }
            }
            return Ok(());
        }
        self.ensure_batch_buf();
        let chunk = self.batch_chunk();
        for start in (0..n).step_by(chunk) {
            let len = chunk.min(n - start);
            for (k, phv) in self.batch_buf[..len].iter_mut().enumerate() {
                phv.clear();
                let (op, slot, value) = fill(start + k);
                phv.set(fields.op, op);
                phv.set(fields.slot, slot);
                phv.set(fields.value, value);
            }
            match &mut self.engine {
                Engine::Interpreted => self.switch.run_batch(&mut self.batch_buf[..len])?,
                Engine::Compiled(_) => unreachable!("compiled engine uses the lanes path"),
                Engine::Sharded(s) => s.run_batch(&mut self.batch_buf[..len])?,
            };
            if let Some(out) = collect.as_deref_mut() {
                out.extend(self.batch_buf[..len].iter().map(|p| p.get(fields.result)));
            }
        }
        Ok(())
    }

    /// Up-front slot validation for the batch APIs: error before any
    /// packet runs.
    fn validate_slots(&self, mut slots: impl Iterator<Item = usize>) -> Result<(), RuntimeError> {
        let n = self.spec.slot_count();
        match slots.find(|&s| s >= n) {
            Some(bad) => Err(self.slot_error(bad)),
            None => Ok(()),
        }
    }

    /// Process a READ packet and decode the result. Panics on non-FP32
    /// specs; use [`FpisaPipeline::read_f64`] or
    /// [`FpisaPipeline::read_bits`] there.
    pub fn read_f32(&mut self, slot: usize) -> Result<f32, RuntimeError> {
        assert_eq!(
            self.cfg.format,
            FpFormat::FP32,
            "read_f32 on a non-FP32 pipeline"
        );
        Ok(f32::from_bits(self.read_bits(slot)? as u32))
    }

    /// Process a READ packet and decode the result to `f64`, whatever the
    /// format.
    pub fn read_f64(&mut self, slot: usize) -> Result<f64, RuntimeError> {
        let bits = self.read_bits(slot)?;
        Ok(self.cfg.format.decode(bits))
    }

    /// Control-plane reset of one slot: zero its exponent and mantissa
    /// register entries, returning it to the empty state, in whichever
    /// engine holds the live state. This is how an aggregation protocol
    /// reuses a slot between rounds without rebuilding the pipeline.
    pub fn clear_slot(&mut self, slot: usize) -> Result<(), RuntimeError> {
        self.check_slot(slot)?;
        match &mut self.engine {
            Engine::Interpreted => {
                self.switch.set_register(self.arrays.exponent, slot, 0);
                self.switch.set_register(self.arrays.mantissa, slot, 0);
            }
            Engine::Compiled(c) => {
                c.set_register(self.arrays.exponent, slot, 0);
                c.set_register(self.arrays.mantissa, slot, 0);
            }
            Engine::Sharded(s) => {
                s.set_register(self.arrays.exponent, slot, 0);
                s.set_register(self.arrays.mantissa, slot, 0);
            }
        }
        Ok(())
    }

    /// Control-plane reset of a contiguous slot range (see
    /// [`FpisaPipeline::clear_slot`]). The range is validated up front: on
    /// an out-of-range slot the call errors before any slot is cleared.
    pub fn clear_range(&mut self, start: usize, len: usize) -> Result<(), RuntimeError> {
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.slots())
            .ok_or_else(|| self.slot_error(start.saturating_add(len).saturating_sub(1)))?;
        for slot in start..end {
            self.clear_slot(slot)?;
        }
        Ok(())
    }

    /// Raw register state of a slot: `(biased exponent, signed mantissa)`.
    /// `(0, 0)` is an empty slot. Control-plane access used by the
    /// differential tests to compare against the reference model. Reads
    /// from whichever engine holds the live state.
    pub fn register_state(&self, slot: usize) -> (u32, i64) {
        match &self.engine {
            Engine::Interpreted => (
                self.switch.register(self.arrays.exponent, slot) as u32,
                self.switch.register(self.arrays.mantissa, slot),
            ),
            Engine::Compiled(c) => (
                c.register(self.arrays.exponent, slot) as u32,
                c.register(self.arrays.mantissa, slot),
            ),
            Engine::Sharded(s) => (
                s.register(self.arrays.exponent, slot) as u32,
                s.register(self.arrays.mantissa, slot),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpisa_core::ReadRounding;

    #[test]
    fn fig4_worked_example_on_every_variant() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 4).unwrap();
            pipe.add_f32(0, 3.0).unwrap();
            assert_eq!(pipe.read_f32(0).unwrap(), 3.0, "{v:?}");
            pipe.add_f32(0, 1.0).unwrap();
            // The register is denormalized (0b10.0 x 2^1)...
            let (e, m) = pipe.register_state(0);
            assert_eq!(e, 128, "{v:?}");
            assert_eq!(m, 0b100 << 22, "{v:?}");
            // ...but reads back as the canonical 4.0.
            assert_eq!(pipe.read_f32(0).unwrap(), 4.0, "{v:?}");
        }
    }

    #[test]
    fn empty_and_zero_slots_read_zero() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 4).unwrap();
            assert_eq!(pipe.read_bits(1).unwrap(), 0, "{v:?} empty slot");
            pipe.add_f32(2, 0.0).unwrap();
            pipe.add_f32(2, -0.0).unwrap();
            assert_eq!(pipe.read_bits(2).unwrap(), 0, "{v:?} zero inputs skip");
            assert_eq!(pipe.register_state(2), (0, 0));
        }
    }

    #[test]
    fn slots_are_independent() {
        let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 8).unwrap();
        pipe.add_f32(1, 1.5).unwrap();
        pipe.add_f32(5, -2.25).unwrap();
        pipe.add_f32(1, 0.5).unwrap();
        assert_eq!(pipe.read_f32(1).unwrap(), 2.0);
        assert_eq!(pipe.read_f32(5).unwrap(), -2.25);
        assert_eq!(pipe.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn out_of_range_slots_error_instead_of_panicking() {
        // Regression test: `add_bits`/`read_bits` used to `assert!` on a
        // bad slot while every other failure returned `Result`.
        let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 4).unwrap();
        for bad in [4usize, 5, 1 << 16, usize::MAX] {
            assert!(
                matches!(
                    pipe.add_bits(bad, 0x3F80_0000),
                    Err(RuntimeError::IndexOutOfRange { .. })
                ),
                "add to slot {bad} must error"
            );
            assert!(
                matches!(
                    pipe.read_bits(bad),
                    Err(RuntimeError::IndexOutOfRange { .. })
                ),
                "read of slot {bad} must error"
            );
        }
        // The failed packets must not have disturbed any state.
        for slot in 0..4 {
            assert_eq!(pipe.register_state(slot), (0, 0));
        }
        // In-range packets still work afterwards.
        pipe.add_f32(3, 2.5).unwrap();
        assert_eq!(pipe.read_f32(3).unwrap(), 2.5);
    }

    #[test]
    fn overwrite_happens_on_tofino_but_not_full() {
        let mut a = FpisaPipeline::new(PipelineVariant::TofinoA, 1).unwrap();
        a.add_f32(0, 1.0).unwrap();
        a.add_f32(0, 512.0).unwrap();
        assert_eq!(
            a.read_f32(0).unwrap(),
            512.0,
            "FPISA-A overwrites past the headroom"
        );

        let mut fp = FpisaPipeline::new(PipelineVariant::ExtendedFull, 1).unwrap();
        fp.add_f32(0, 1.0).unwrap();
        fp.add_f32(0, 512.0).unwrap();
        assert_eq!(
            fp.read_f32(0).unwrap(),
            513.0,
            "RSAW keeps the stored value"
        );
    }

    #[test]
    fn subnormals_and_cancellation() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 2).unwrap();
            let tiny = f32::from_bits(7);
            pipe.add_f32(0, tiny).unwrap();
            pipe.add_f32(0, tiny).unwrap();
            assert_eq!(pipe.read_bits(0).unwrap(), 14, "{v:?} subnormal sum");

            pipe.add_f32(1, 1.0).unwrap();
            pipe.add_f32(1, -(1.0 - 2f32.powi(-20))).unwrap();
            assert_eq!(
                pipe.read_f32(1).unwrap(),
                2f32.powi(-20),
                "{v:?} cancellation"
            );
        }
    }

    #[test]
    fn fp16_and_bf16_pipelines_sum_exactly_representable_values() {
        for format in [FpFormat::FP16, FpFormat::BF16] {
            for v in PipelineVariant::all() {
                let spec = PipelineSpec::new(v).format(format).slots(2);
                let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
                for x in [1.0f64, 0.5, 2.0, -0.25, 3.0] {
                    pipe.add_value(0, x).unwrap();
                }
                assert_eq!(pipe.read_f64(0).unwrap(), 6.25, "{v:?} {format:?}");
            }
        }
    }

    #[test]
    fn nearest_even_readout_rounds_ties_to_even() {
        // Accumulate (2^24 + 3) * 2^-23 into an FP32 slot with guard bits:
        // truncation keeps 2 + 2^-22, nearest-even rounds the half-ulp tie
        // up to 2 + 2^-21 (the `rounding_modes_differ_on_dropped_bits`
        // case of fpisa-core, now through the packet pipeline).
        for v in PipelineVariant::all() {
            for (rounding, expect) in [
                (ReadRounding::TowardZero, 2.0 + 2.0 * f32::EPSILON),
                (ReadRounding::NearestEven, 2.0 + 4.0 * f32::EPSILON),
            ] {
                let spec = PipelineSpec::new(v)
                    .guard_bits(2)
                    .read_rounding(rounding)
                    .slots(1);
                let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
                pipe.add_f32(0, 2.0).unwrap();
                pipe.add_f32(0, 3.0 * 2f32.powi(-23)).unwrap();
                assert_eq!(pipe.read_f32(0).unwrap(), expect, "{v:?} {rounding:?}");
            }
        }
    }

    #[test]
    fn both_engines_agree_scalar_and_batch() {
        for v in PipelineVariant::all() {
            let mut interp = FpisaPipeline::from_spec(
                PipelineSpec::new(v)
                    .slots(8)
                    .engine(ExecEngine::Interpreted),
            )
            .unwrap();
            let mut comp = FpisaPipeline::from_spec(
                PipelineSpec::new(v).slots(8).engine(ExecEngine::Compiled),
            )
            .unwrap();
            let stream: Vec<(usize, f32)> = (0..64)
                .map(|i| ((i * 7) % 8, (i as f32 - 30.5) * 1.25))
                .collect();
            // Scalar on the interpreter, batch on the compiled engine.
            for &(slot, x) in &stream {
                interp.add_f32(slot, x).unwrap();
            }
            comp.add_batch_f32(&stream).unwrap();
            for slot in 0..8 {
                assert_eq!(
                    interp.register_state(slot),
                    comp.register_state(slot),
                    "{v:?} slot {slot}"
                );
            }
            let slots: Vec<usize> = (0..8).collect();
            let batch_reads = comp.read_batch(&slots).unwrap();
            for (slot, &batch_read) in batch_reads.iter().enumerate() {
                let want = interp.read_bits(slot).unwrap();
                assert_eq!(batch_read, want, "{v:?} slot {slot}");
                assert_eq!(comp.read_bits(slot).unwrap(), want, "{v:?} slot {slot}");
            }
        }
    }

    #[test]
    fn add_batch_equals_scalar_adds() {
        let mut scalar = FpisaPipeline::new(PipelineVariant::TofinoA, 16).unwrap();
        let mut batched = FpisaPipeline::new(PipelineVariant::TofinoA, 16).unwrap();
        let packets: Vec<(usize, u64)> = (0..2000u32)
            .map(|i| {
                let x = ((i as f32).sin() * 2f32.powi((i % 40) as i32 - 20)).to_bits();
                ((i as usize * 13) % 16, u64::from(x))
            })
            .collect();
        for &(slot, bits) in &packets {
            scalar.add_bits(slot, bits).unwrap();
        }
        batched.add_batch(&packets).unwrap();
        for slot in 0..16 {
            assert_eq!(
                scalar.register_state(slot),
                batched.register_state(slot),
                "slot {slot}"
            );
        }
        assert_eq!(
            batched.read_batch(&(0..16).collect::<Vec<_>>()).unwrap(),
            (0..16)
                .map(|s| scalar.read_bits(s).unwrap())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_rejects_bad_slots_before_applying_anything() {
        let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 4).unwrap();
        let packets = [
            (0usize, 1.0f32.to_bits() as u64),
            (9, 2.0f32.to_bits() as u64),
        ];
        assert!(matches!(
            pipe.add_batch(&packets),
            Err(RuntimeError::IndexOutOfRange { .. })
        ));
        // Up-front validation: the in-range packet must NOT have run.
        assert_eq!(pipe.register_state(0), (0, 0));
        assert!(matches!(
            pipe.read_batch(&[0, 4]),
            Err(RuntimeError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn clear_slot_resets_state_for_reuse() {
        for engine in [ExecEngine::Compiled, ExecEngine::Interpreted] {
            let spec = PipelineSpec::new(PipelineVariant::TofinoA)
                .slots(4)
                .engine(engine);
            let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
            pipe.add_f32(1, 3.5).unwrap();
            pipe.add_f32(2, -1.0).unwrap();
            pipe.clear_slot(1).unwrap();
            assert_eq!(pipe.register_state(1), (0, 0), "{engine:?}");
            assert_eq!(pipe.read_bits(1).unwrap(), 0, "{engine:?}");
            // Untouched slots keep their state; the cleared slot is reusable.
            assert_eq!(pipe.read_f32(2).unwrap(), -1.0, "{engine:?}");
            pipe.add_f32(1, 2.0).unwrap();
            assert_eq!(pipe.read_f32(1).unwrap(), 2.0, "{engine:?}");
            // Range clear validates before clearing anything.
            pipe.add_f32(0, 1.0).unwrap();
            assert!(matches!(
                pipe.clear_range(2, 3),
                Err(RuntimeError::IndexOutOfRange { .. })
            ));
            assert_eq!(pipe.read_f32(2).unwrap(), -1.0, "{engine:?} untouched");
            pipe.clear_range(0, 4).unwrap();
            for slot in 0..4 {
                assert_eq!(pipe.register_state(slot), (0, 0), "{engine:?}");
            }
            assert!(pipe.clear_slot(4).is_err());
            assert!(pipe.clear_range(usize::MAX, 2).is_err());
        }
    }

    #[test]
    fn sharded_pipeline_matches_single_engine_bit_for_bit() {
        // Mixed scalar adds, batch adds, reads and clears on 1 vs N
        // shards: identical register state and read-outs throughout.
        let stream: Vec<(usize, u64)> = (0..3000u32)
            .map(|i| {
                let x = ((i as f32).cos() * 2f32.powi((i % 44) as i32 - 22)).to_bits();
                ((i as usize * 5) % 13, u64::from(x))
            })
            .collect();
        let mut single =
            FpisaPipeline::from_spec(PipelineSpec::new(PipelineVariant::TofinoA).slots(13))
                .unwrap();
        for shards in [2usize, 4, 13] {
            let spec = PipelineSpec::new(PipelineVariant::TofinoA)
                .slots(13)
                .shards(shards);
            let mut sharded = FpisaPipeline::from_spec(spec).unwrap();
            assert_eq!(sharded.shards(), shards);
            sharded.add_batch(&stream).unwrap();
            if shards == 2 {
                single.add_batch(&stream).unwrap();
            }
            for slot in 0..13 {
                assert_eq!(
                    sharded.register_state(slot),
                    single.register_state(slot),
                    "{shards} shards, slot {slot}"
                );
            }
            let slots: Vec<usize> = (0..13).collect();
            assert_eq!(
                sharded.read_batch(&slots).unwrap(),
                single.read_batch(&slots).unwrap(),
                "{shards} shards"
            );
            // Scalar packets keep working after batches, across shards.
            sharded.add_f32(12, 1.5).unwrap();
            sharded.add_f32(0, -2.0).unwrap();
            let mut scalar_ref = single.clone();
            scalar_ref.add_f32(12, 1.5).unwrap();
            scalar_ref.add_f32(0, -2.0).unwrap();
            for slot in [0usize, 12] {
                assert_eq!(
                    sharded.register_state(slot),
                    scalar_ref.register_state(slot)
                );
            }
            // clear_range spanning shard boundaries clears everywhere.
            sharded.clear_range(0, 13).unwrap();
            for slot in 0..13 {
                assert_eq!(sharded.register_state(slot), (0, 0));
            }
        }
    }

    #[test]
    fn sharded_pipeline_validates_slots_and_specs() {
        let spec = PipelineSpec::new(PipelineVariant::TofinoA)
            .slots(8)
            .shards(4);
        let mut pipe = FpisaPipeline::from_spec(spec).unwrap();
        assert!(matches!(
            pipe.add_bits(8, 0),
            Err(RuntimeError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            pipe.add_batch(&[(0, 0), (99, 0)]),
            Err(RuntimeError::IndexOutOfRange { .. })
        ));
        assert_eq!(pipe.register_state(0), (0, 0), "nothing ran");
        // Out-of-bounds clear_range errors (never truncates) on the
        // sharded engine too, and clears nothing.
        pipe.add_f32(7, 1.0).unwrap();
        assert!(matches!(
            pipe.clear_range(6, 3),
            Err(RuntimeError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            pipe.clear_range(usize::MAX, 2),
            Err(RuntimeError::IndexOutOfRange { .. })
        ));
        assert_ne!(pipe.register_state(7), (0, 0), "in-range slot untouched");
        // Shards must fit the slot space and need the compiled engine.
        assert!(matches!(
            PipelineSpec::new(PipelineVariant::TofinoA)
                .slots(4)
                .shards(5)
                .validate(),
            Err(SpecError::ShardsOutOfRange {
                shards: 5,
                slots: 4
            })
        ));
        assert!(matches!(
            PipelineSpec::new(PipelineVariant::TofinoA)
                .slots(8)
                .shards(0)
                .validate(),
            Err(SpecError::ShardsOutOfRange { .. })
        ));
        assert!(matches!(
            PipelineSpec::new(PipelineVariant::TofinoA)
                .slots(8)
                .shards(2)
                .engine(ExecEngine::Interpreted)
                .validate(),
            Err(SpecError::ShardedInterpreted)
        ));
    }

    #[test]
    fn shard_alignment_keeps_chunk_ranges_whole() {
        let spec = PipelineSpec::new(PipelineVariant::TofinoA)
            .slots(100)
            .shards(4)
            .shard_align(16);
        let pipe = FpisaPipeline::from_spec(spec).unwrap();
        for r in &pipe.shard_ranges()[..pipe.shards() - 1] {
            assert_eq!(r.start % 16, 0, "boundary off alignment");
        }
    }

    #[test]
    fn reads_do_not_disturb_state() {
        let mut pipe = FpisaPipeline::new(PipelineVariant::ExtendedFull, 1).unwrap();
        pipe.add_f32(0, 0.1).unwrap();
        let before = pipe.register_state(0);
        for _ in 0..5 {
            pipe.read_bits(0).unwrap();
        }
        assert_eq!(pipe.register_state(0), before);
    }
}
