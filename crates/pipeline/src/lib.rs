//! # fpisa-pipeline
//!
//! The FPISA floating-point add/read dataflow of the paper's Fig. 2,
//! compiled onto the PISA switch simulator from `fpisa-pisa` and
//! differentially tested — bit for bit — against the reference model in
//! `fpisa-core`.
//!
//! [`FpisaPipeline`] wraps a [`fpisa_pisa::Switch`] running the program
//! built by [`program::build_program`]: per aggregation slot, a biased
//! exponent register entry and a signed 32-bit mantissa register entry
//! (Fig. 3), updated by ADD packets and renormalized by READ packets using
//! only match tables and integer ALU operations. Three
//! [`program::PipelineVariant`]s cover the paper's hardware spectrum —
//! FPISA-A on unmodified Tofino (shift-by-match-table, overwrite past the
//! headroom), FPISA-A with the proposed 2-operand shift ALU, and full
//! FPISA with the RSAW stateful unit.
//!
//! The [`report`] module produces the Table 3-style resource accounting
//! for each variant, rendered through the shared `fpisa-hw` report
//! machinery.
//!
//! ## Example
//!
//! ```
//! use fpisa_pipeline::{FpisaPipeline, PipelineVariant};
//!
//! let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 16).unwrap();
//! pipe.add_f32(0, 3.0).unwrap();
//! pipe.add_f32(0, 1.0).unwrap();
//! assert_eq!(pipe.read_f32(0).unwrap(), 4.0); // Fig. 4's worked example
//! ```
//!
//! ## Scope
//!
//! The program reproduces the core configuration the paper deploys —
//! FP32 in 32-bit registers, no guard bits, saturating overflow,
//! truncating read-out (`FpisaConfig::fp32_tofino()` /
//! `fp32_extended()`). Inputs must be finite: a PISA switch has no NaN
//! semantics, and the paper assumes hosts send finite values.

pub mod program;
pub mod report;

pub use program::{build_program, Arrays, Fields, PipelineVariant, OP_ADD, OP_READ};
pub use report::{render_stage_breakdown, render_table3, table3, Table3Row};

use fpisa_core::FpisaConfig;
use fpisa_pisa::{ProgramError, ResourceReport, RuntimeError, Switch, SwitchProgram};

/// A running FPISA pipeline: the Fig. 2 program instantiated on the switch
/// simulator with `slots` aggregation slots.
#[derive(Debug, Clone)]
pub struct FpisaPipeline {
    switch: Switch,
    fields: Fields,
    arrays: Arrays,
    variant: PipelineVariant,
    slots: usize,
}

impl FpisaPipeline {
    /// Build and validate the program for a variant, with zeroed slots.
    pub fn new(variant: PipelineVariant, slots: usize) -> Result<Self, ProgramError> {
        let (program, fields, arrays) = build_program(variant, slots);
        let switch = Switch::new(program)?;
        Ok(FpisaPipeline {
            switch,
            fields,
            arrays,
            variant,
            slots,
        })
    }

    /// The variant this pipeline runs.
    pub fn variant(&self) -> PipelineVariant {
        self.variant
    }

    /// Number of aggregation slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The `fpisa-core` configuration this pipeline reproduces.
    pub fn core_config(&self) -> FpisaConfig {
        self.variant.core_config()
    }

    /// The underlying validated switch program.
    pub fn switch_program(&self) -> &SwitchProgram {
        self.switch.program()
    }

    /// The PHV field handles (for custom packet injection in tests).
    pub fn fields(&self) -> &Fields {
        &self.fields
    }

    /// Resource accounting of the running program.
    pub fn resource_report(&self) -> ResourceReport {
        ResourceReport::of(self.switch.program())
    }

    /// Process an ADD packet: fold packed FP32 `bits` into `slot`.
    ///
    /// Non-finite inputs are the caller's responsibility (see the crate
    /// docs); the switch will process their bit patterns like any others.
    pub fn add_bits(&mut self, slot: usize, bits: u32) -> Result<(), RuntimeError> {
        assert!(slot < self.slots, "slot {slot} out of range");
        let mut phv = self.switch.phv();
        phv.set(self.fields.op, OP_ADD);
        phv.set(self.fields.slot, slot as u64);
        phv.set(self.fields.value, bits as u64);
        self.switch.run(&mut phv)?;
        Ok(())
    }

    /// Process an ADD packet carrying an `f32`.
    pub fn add_f32(&mut self, slot: usize, x: f32) -> Result<(), RuntimeError> {
        self.add_bits(slot, x.to_bits())
    }

    /// Process a READ packet: renormalize `slot` into packed FP32 bits.
    /// Reading does not modify the slot.
    pub fn read_bits(&mut self, slot: usize) -> Result<u32, RuntimeError> {
        assert!(slot < self.slots, "slot {slot} out of range");
        let mut phv = self.switch.phv();
        phv.set(self.fields.op, OP_READ);
        phv.set(self.fields.slot, slot as u64);
        self.switch.run(&mut phv)?;
        Ok(phv.get(self.fields.result) as u32)
    }

    /// Process a READ packet and decode the result.
    pub fn read_f32(&mut self, slot: usize) -> Result<f32, RuntimeError> {
        Ok(f32::from_bits(self.read_bits(slot)?))
    }

    /// Raw register state of a slot: `(biased exponent, signed mantissa)`.
    /// `(0, 0)` is an empty slot. Control-plane access used by the
    /// differential tests to compare against the reference model.
    pub fn register_state(&self, slot: usize) -> (u32, i64) {
        (
            self.switch.register(self.arrays.exponent, slot) as u32,
            self.switch.register(self.arrays.mantissa, slot),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_worked_example_on_every_variant() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 4).unwrap();
            pipe.add_f32(0, 3.0).unwrap();
            assert_eq!(pipe.read_f32(0).unwrap(), 3.0, "{v:?}");
            pipe.add_f32(0, 1.0).unwrap();
            // The register is denormalized (0b10.0 x 2^1)...
            let (e, m) = pipe.register_state(0);
            assert_eq!(e, 128, "{v:?}");
            assert_eq!(m, 0b100 << 22, "{v:?}");
            // ...but reads back as the canonical 4.0.
            assert_eq!(pipe.read_f32(0).unwrap(), 4.0, "{v:?}");
        }
    }

    #[test]
    fn empty_and_zero_slots_read_zero() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 4).unwrap();
            assert_eq!(pipe.read_bits(1).unwrap(), 0, "{v:?} empty slot");
            pipe.add_f32(2, 0.0).unwrap();
            pipe.add_f32(2, -0.0).unwrap();
            assert_eq!(pipe.read_bits(2).unwrap(), 0, "{v:?} zero inputs skip");
            assert_eq!(pipe.register_state(2), (0, 0));
        }
    }

    #[test]
    fn slots_are_independent() {
        let mut pipe = FpisaPipeline::new(PipelineVariant::TofinoA, 8).unwrap();
        pipe.add_f32(1, 1.5).unwrap();
        pipe.add_f32(5, -2.25).unwrap();
        pipe.add_f32(1, 0.5).unwrap();
        assert_eq!(pipe.read_f32(1).unwrap(), 2.0);
        assert_eq!(pipe.read_f32(5).unwrap(), -2.25);
        assert_eq!(pipe.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn overwrite_happens_on_tofino_but_not_full() {
        let mut a = FpisaPipeline::new(PipelineVariant::TofinoA, 1).unwrap();
        a.add_f32(0, 1.0).unwrap();
        a.add_f32(0, 512.0).unwrap();
        assert_eq!(
            a.read_f32(0).unwrap(),
            512.0,
            "FPISA-A overwrites past the headroom"
        );

        let mut fp = FpisaPipeline::new(PipelineVariant::ExtendedFull, 1).unwrap();
        fp.add_f32(0, 1.0).unwrap();
        fp.add_f32(0, 512.0).unwrap();
        assert_eq!(
            fp.read_f32(0).unwrap(),
            513.0,
            "RSAW keeps the stored value"
        );
    }

    #[test]
    fn subnormals_and_cancellation() {
        for v in PipelineVariant::all() {
            let mut pipe = FpisaPipeline::new(v, 2).unwrap();
            let tiny = f32::from_bits(7);
            pipe.add_f32(0, tiny).unwrap();
            pipe.add_f32(0, tiny).unwrap();
            assert_eq!(pipe.read_bits(0).unwrap(), 14, "{v:?} subnormal sum");

            pipe.add_f32(1, 1.0).unwrap();
            pipe.add_f32(1, -(1.0 - 2f32.powi(-20))).unwrap();
            assert_eq!(
                pipe.read_f32(1).unwrap(),
                2f32.powi(-20),
                "{v:?} cancellation"
            );
        }
    }

    #[test]
    fn reads_do_not_disturb_state() {
        let mut pipe = FpisaPipeline::new(PipelineVariant::ExtendedFull, 1).unwrap();
        pipe.add_f32(0, 0.1).unwrap();
        let before = pipe.register_state(0);
        for _ in 0..5 {
            pipe.read_bits(0).unwrap();
        }
        assert_eq!(pipe.register_state(0), before);
    }
}
