//! [`PipelineSpec`]: the validated, format-generic description of one
//! FPISA pipeline instantiation.
//!
//! The paper stresses that FPISA is format-agnostic — §3.3 notes that
//! FP16, bfloat16 and block floating point are supported by changing field
//! widths, and Appendix A.1 adds guard bits with round-to-nearest-even
//! read-out. A `PipelineSpec` captures one point of that space:
//!
//! * a [`PipelineVariant`] (the hardware/algorithm combination),
//! * an [`FpFormat`] (FP32, FP16, BF16 or a custom `(e, m)` format),
//! * the mantissa-register width,
//! * the number of guard bits kept below the mantissa,
//! * the read-out [`ReadRounding`],
//! * and the aggregation slot count.
//!
//! It is the single way programs are built: every field width, bias
//! constant, shift-table entry count, headroom threshold and the read-out
//! renormalization path in [`crate::program`] is computed from the spec,
//! and [`crate::FpisaPipeline::from_spec`] instantiates it.
//! [`crate::FpisaPipeline::new`] remains as a thin FP32 convenience.
//!
//! ```
//! use fpisa_core::{FpFormat, ReadRounding};
//! use fpisa_pipeline::{PipelineSpec, PipelineVariant};
//!
//! let spec = PipelineSpec::new(PipelineVariant::TofinoA)
//!     .format(FpFormat::BF16)
//!     .guard_bits(2)
//!     .read_rounding(ReadRounding::NearestEven)
//!     .slots(64);
//! assert!(spec.validate().is_ok());
//! assert_eq!(spec.effective_register_bits(), 16);
//! ```

use crate::program::{build_for_spec, Arrays, Fields, PipelineVariant};
use fpisa_core::{FpFormat, FpisaConfig, ReadRounding};
use fpisa_pisa::{AnalysisLevel, PhaseCOrder, ProgramError, SwitchProgram};
use serde::{Deserialize, Serialize};

/// Largest slot count the 16-bit `slot` PHV field can address.
pub const MAX_SLOTS: usize = 1 << 16;

/// Why a [`PipelineSpec`] cannot be instantiated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecError {
    /// The slot count is zero or exceeds [`MAX_SLOTS`].
    SlotsOutOfRange {
        /// The requested slot count.
        slots: usize,
    },
    /// The packed format does not fit the 32-bit `value`/`result` fields.
    FormatTooWide {
        /// Packed width of the requested format.
        bits: u32,
    },
    /// The mantissa register exceeds the 32-bit PHV containers the
    /// program's metadata fields are sized for.
    RegisterTooWide {
        /// The requested register width.
        bits: u32,
    },
    /// The mantissa register cannot hold sign + significand + guard bits
    /// + one headroom bit.
    RegisterTooNarrow {
        /// The requested register width.
        register_bits: u32,
        /// The minimum width the format + guard bits need.
        required: u32,
    },
    /// The read-out rounding mode has no pipeline lowering (only
    /// truncation and round-to-nearest-even are emitted).
    UnsupportedRounding(ReadRounding),
    /// The shard count is zero or exceeds the slot count (every shard
    /// must own at least one slot).
    ShardsOutOfRange {
        /// The requested shard count.
        shards: usize,
        /// The slot count being partitioned.
        slots: usize,
    },
    /// Sharding requested on the interpreted engine — only the compiled
    /// engine has a sharded execution path
    /// ([`fpisa_pisa::ShardedSwitch`] owns [`fpisa_pisa::CompiledSwitch`]
    /// shards).
    ShardedInterpreted,
    /// The generated program failed switch validation (never produced by
    /// specs that pass [`PipelineSpec::validate`]; surfaced for
    /// completeness by [`crate::FpisaPipeline::from_spec`]).
    Program(ProgramError),
    /// The static analyzer found error-severity diagnostics under
    /// [`fpisa_pisa::AnalysisLevel::Deny`] (never produced by built-in
    /// programs, which all analyze clean; reachable when program
    /// generation regresses).
    Analysis {
        /// How many error diagnostics the report carried.
        errors: usize,
        /// The first error, rendered.
        first: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::SlotsOutOfRange { slots } => {
                write!(f, "slot count {slots} outside 1..={MAX_SLOTS}")
            }
            SpecError::FormatTooWide { bits } => {
                write!(
                    f,
                    "packed format of {bits} bits exceeds the 32-bit value field"
                )
            }
            SpecError::RegisterTooWide { bits } => {
                write!(f, "register width {bits} exceeds the 32-bit PHV containers")
            }
            SpecError::RegisterTooNarrow {
                register_bits,
                required,
            } => write!(
                f,
                "register of {register_bits} bits cannot hold the significand: \
                 at least {required} bits required (sign + significand + guard + headroom)"
            ),
            SpecError::UnsupportedRounding(r) => {
                write!(f, "read-out rounding {r:?} has no pipeline lowering")
            }
            SpecError::ShardsOutOfRange { shards, slots } => {
                write!(f, "shard count {shards} outside 1..={slots} (slot count)")
            }
            SpecError::ShardedInterpreted => {
                write!(
                    f,
                    "sharded execution requires the compiled engine; the interpreter has no \
                     multi-core path"
                )
            }
            SpecError::Program(e) => write!(f, "generated program failed validation: {e}"),
            SpecError::Analysis { errors, first } => write!(
                f,
                "static analysis rejected the generated program ({errors} error(s); \
                 first: {first})"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ProgramError> for SpecError {
    fn from(e: ProgramError) -> Self {
        SpecError::Program(e)
    }
}

/// Which execution engine [`crate::FpisaPipeline::from_spec`] instantiates
/// for the generated program. Both produce bit-for-bit identical packets
/// (enforced by the differential suite); they differ only in speed and
/// introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecEngine {
    /// The interpreting [`fpisa_pisa::Switch`]: the readable reference
    /// engine, the only one that can trace per-table execution.
    Interpreted,
    /// The pre-resolved [`fpisa_pisa::CompiledSwitch`] fast path
    /// (default): hash/dense match dispatch, flat op tapes, zero
    /// per-packet allocation.
    Compiled,
}

/// A validated, builder-style description of one FPISA pipeline: variant,
/// floating-point format, register width, guard bits, read-out rounding,
/// slot count and execution engine. See the [module docs](self) for the
/// paper mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    variant: PipelineVariant,
    format: FpFormat,
    /// `None` means "native width for the format" — see
    /// [`PipelineSpec::effective_register_bits`].
    register_bits: Option<u32>,
    guard_bits: u32,
    read_rounding: ReadRounding,
    slots: usize,
    engine: ExecEngine,
    shards: usize,
    shard_align: usize,
    /// `None` keeps [`fpisa_pisa::DEFAULT_PARALLEL_MIN`].
    #[serde(default)]
    parallel_min: Option<usize>,
    /// `None` asks the OS (`std::thread::available_parallelism`).
    #[serde(default)]
    parallelism: Option<usize>,
    /// Verify-on-compile level: [`AnalysisLevel::Deny`] by default.
    #[serde(default)]
    analysis: AnalysisLevel,
    /// `None` keeps the compiled engine's default (SIMD kernels on).
    #[serde(default)]
    simd_kernels: Option<bool>,
    /// `None` keeps [`PhaseCOrder::Auto`].
    #[serde(default)]
    phase_c: Option<PhaseCOrder>,
    /// `None` keeps [`fpisa_pisa::SPLIT_LUT_BITS_DEFAULT`].
    #[serde(default)]
    split_lut_bits: Option<u32>,
}

impl PipelineSpec {
    /// A spec with the paper's deployed defaults: FP32 in 32-bit
    /// registers, no guard bits, truncating read-out, 16 slots.
    pub fn new(variant: PipelineVariant) -> Self {
        PipelineSpec {
            variant,
            format: FpFormat::FP32,
            register_bits: None,
            guard_bits: 0,
            read_rounding: ReadRounding::TowardZero,
            slots: 16,
            engine: ExecEngine::Compiled,
            shards: 1,
            shard_align: 1,
            parallel_min: None,
            parallelism: None,
            analysis: AnalysisLevel::default(),
            simd_kernels: None,
            phase_c: None,
            split_lut_bits: None,
        }
    }

    /// Builder: set the floating-point format (§3.3).
    pub fn format(mut self, format: FpFormat) -> Self {
        self.format = format;
        self
    }

    /// Builder: set the mantissa-register width explicitly. Without this,
    /// the width follows the format (16-bit registers for 16-bit formats,
    /// 32-bit otherwise — the register files real switches provide).
    pub fn register_bits(mut self, bits: u32) -> Self {
        self.register_bits = Some(bits);
        self
    }

    /// Builder: set the number of guard bits kept below the mantissa
    /// (Appendix A.1; 0 reproduces the paper's base design).
    pub fn guard_bits(mut self, guard_bits: u32) -> Self {
        self.guard_bits = guard_bits;
        self
    }

    /// Builder: set the read-out rounding. [`ReadRounding::NearestEven`]
    /// emits the Appendix A.1 guard-bit-inspection stage sequence.
    pub fn read_rounding(mut self, rounding: ReadRounding) -> Self {
        self.read_rounding = rounding;
        self
    }

    /// Builder: set the aggregation slot count.
    pub fn slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Builder: pick the execution engine ([`ExecEngine::Compiled`] by
    /// default). [`ExecEngine::Interpreted`] keeps the reference engine,
    /// e.g. as a differential baseline or for traced debugging.
    pub fn engine(mut self, engine: ExecEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Builder: shard the slot space across `shards` compiled engines run
    /// on separate cores (1 — the default — keeps the single-engine
    /// path). Each shard owns a contiguous slot range; results are
    /// bit-for-bit identical to single-core execution. Requires the
    /// compiled engine.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder: force shard boundaries onto multiples of `align` slots
    /// (default 1, i.e. unconstrained). Aggregation protocols pass their
    /// chunk size here so a whole chunk's slot range always lands on one
    /// shard.
    pub fn shard_align(mut self, align: usize) -> Self {
        self.shard_align = align.max(1);
        self
    }

    /// Builder: set the sharded engine's single-thread batch threshold —
    /// batches below this many packets stay on the calling thread
    /// (default [`fpisa_pisa::DEFAULT_PARALLEL_MIN`]). Only meaningful
    /// with [`PipelineSpec::shards`] `> 1`; semantics are identical at
    /// any value.
    pub fn parallel_min(mut self, packets: usize) -> Self {
        self.parallel_min = Some(packets);
        self
    }

    /// Builder: override the sharded engine's worker-thread budget
    /// instead of asking the OS. `>= 2` forces the persistent worker pool
    /// on even where `available_parallelism` reports one core — the knob
    /// CI smoke runs use to exercise the pool path on single-core hosts.
    /// Only meaningful with [`PipelineSpec::shards`] `> 1`; semantics are
    /// identical at any value.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = Some(threads);
        self
    }

    /// Builder: set the verify-on-compile level. The default,
    /// [`AnalysisLevel::Deny`], runs the static analyzer over every
    /// generated program (each shard's program, under sharding) and
    /// fails [`crate::FpisaPipeline::from_spec`] with
    /// [`SpecError::Analysis`] on any error-severity finding.
    /// [`AnalysisLevel::Warn`] analyzes without failing;
    /// [`AnalysisLevel::Off`] skips the analyzer (shard-safety proofs
    /// are still attached where they hold).
    pub fn analysis(mut self, level: AnalysisLevel) -> Self {
        self.analysis = level;
        self
    }

    /// Builder: toggle the compiled engine's explicit SIMD lane kernels
    /// (default on). Results are bit-for-bit identical either way —
    /// the off position exists for differential testing and for
    /// microbenching the kernels' contribution.
    pub fn simd_kernels(mut self, on: bool) -> Self {
        self.simd_kernels = Some(on);
        self
    }

    /// Builder: set the compiled engine's Phase C (stateful update)
    /// ordering policy (default [`PhaseCOrder::Auto`]). Results are
    /// bit-for-bit identical under every policy.
    pub fn phase_c_order(mut self, order: PhaseCOrder) -> Self {
        self.phase_c = Some(order);
        self
    }

    /// Builder: cap the compiled engine's split-key LUT width in bits
    /// (default [`fpisa_pisa::SPLIT_LUT_BITS_DEFAULT`], clamped to
    /// [`fpisa_pisa::SPLIT_LUT_MAX_BITS`]; `0` disables split-key
    /// dispatch). Semantics are identical at every width.
    pub fn split_lut_bits(mut self, bits: u32) -> Self {
        self.split_lut_bits = Some(bits);
        self
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The configured verify-on-compile level.
    pub fn analysis_level(&self) -> AnalysisLevel {
        self.analysis
    }

    /// The hardware/algorithm variant.
    pub fn variant(&self) -> PipelineVariant {
        self.variant
    }

    /// The floating-point format aggregated on the wire.
    pub fn fp_format(&self) -> FpFormat {
        self.format
    }

    /// Guard bits kept below the mantissa.
    pub fn guard_bit_count(&self) -> u32 {
        self.guard_bits
    }

    /// The configured read-out rounding.
    pub fn rounding(&self) -> ReadRounding {
        self.read_rounding
    }

    /// The aggregation slot count.
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// The execution engine the pipeline will run on.
    pub fn execution_engine(&self) -> ExecEngine {
        self.engine
    }

    /// The requested shard count (1 = single-engine execution).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard-boundary alignment in slots.
    pub fn shard_alignment(&self) -> usize {
        self.shard_align
    }

    /// The configured single-thread batch threshold, if overridden.
    pub fn parallel_min_threshold(&self) -> Option<usize> {
        self.parallel_min
    }

    /// The configured worker-thread budget, if overridden.
    pub fn parallelism_override(&self) -> Option<usize> {
        self.parallelism
    }

    /// Whether the compiled engine's SIMD lane kernels are enabled
    /// (`None` = engine default, on).
    pub fn simd_kernels_enabled(&self) -> Option<bool> {
        self.simd_kernels
    }

    /// The configured Phase C ordering policy, if overridden.
    pub fn phase_c_ordering(&self) -> Option<PhaseCOrder> {
        self.phase_c
    }

    /// The configured split-key LUT width cap, if overridden.
    pub fn split_lut_width(&self) -> Option<u32> {
        self.split_lut_bits
    }

    /// The slot ranges the spec's shards own: a balanced, exact,
    /// `shard_align`-aligned partition of the slot space. May hold fewer
    /// ranges than the requested shard count when the alignment leaves
    /// fewer whole blocks than shards.
    pub fn shard_ranges(&self) -> Vec<fpisa_pisa::SlotRange> {
        fpisa_pisa::partition_slots_aligned(self.slots, self.shards, self.shard_align)
    }

    /// The mantissa-register width this spec resolves to: the explicit
    /// width if one was set, else 16 bits for formats that pack into 16
    /// bits (FP16, BF16) and 32 bits otherwise.
    pub fn effective_register_bits(&self) -> u32 {
        self.register_bits
            .unwrap_or(if self.format.total_bits() <= 16 {
                16
            } else {
                32
            })
    }

    /// A short human-readable label, used by the Table 3 report rows.
    pub fn label(&self) -> String {
        let mut s = format!("{} {}", self.variant.name(), format_name(self.format));
        if self.guard_bits > 0 {
            s.push_str(&format!("+g{}", self.guard_bits));
        }
        if self.read_rounding == ReadRounding::NearestEven {
            s.push_str(" RNE");
        }
        if self.shards > 1 {
            s.push_str(&format!(" ×{}", self.shards));
        }
        s
    }

    // ------------------------------------------------------------------
    // Validation and lowering
    // ------------------------------------------------------------------

    /// Check every constraint the program builder relies on. `Ok` means
    /// [`PipelineSpec::build`] succeeds and the generated program
    /// validates against [`PipelineVariant::caps`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.slots == 0 || self.slots > MAX_SLOTS {
            return Err(SpecError::SlotsOutOfRange { slots: self.slots });
        }
        if self.format.total_bits() > 32 {
            return Err(SpecError::FormatTooWide {
                bits: self.format.total_bits(),
            });
        }
        let reg = self.effective_register_bits();
        if reg > 32 {
            return Err(SpecError::RegisterTooWide { bits: reg });
        }
        // Sign + significand (with the implied one) + guard bits + at
        // least one headroom bit, matching `FpisaConfig::new`'s contract.
        let required = self.format.sig_bits() + 2 + self.guard_bits;
        if reg < required {
            return Err(SpecError::RegisterTooNarrow {
                register_bits: reg,
                required,
            });
        }
        if self.read_rounding == ReadRounding::TowardNegInf {
            return Err(SpecError::UnsupportedRounding(self.read_rounding));
        }
        if self.shards == 0 || self.shards > self.slots {
            return Err(SpecError::ShardsOutOfRange {
                shards: self.shards,
                slots: self.slots,
            });
        }
        if self.shards > 1 && self.engine == ExecEngine::Interpreted {
            return Err(SpecError::ShardedInterpreted);
        }
        Ok(())
    }

    /// The `fpisa-core` configuration this spec reproduces — the reference
    /// model the differential suite compares against.
    pub fn core_config(&self) -> Result<FpisaConfig, SpecError> {
        self.validate()?;
        Ok(FpisaConfig::new(
            self.format,
            self.effective_register_bits(),
            self.variant.mode(),
        )
        .with_guard_bits(self.guard_bits)
        .with_read_rounding(self.read_rounding))
    }

    /// Lower the spec to a switch program. The returned program is
    /// guaranteed to validate against [`PipelineVariant::caps`].
    pub fn build(&self) -> Result<(SwitchProgram, Fields, Arrays), SpecError> {
        let cfg = self.core_config()?;
        Ok(build_for_spec(self, &cfg))
    }
}

/// Display name of a format (the constants get their conventional names,
/// anything else the `(e, m)` shape).
pub fn format_name(format: FpFormat) -> String {
    match format {
        FpFormat::FP64 => "FP64".into(),
        FpFormat::FP32 => "FP32".into(),
        FpFormat::FP16 => "FP16".into(),
        FpFormat::BF16 => "BF16".into(),
        f => format!("FP({},{})", f.exp_bits, f.man_bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_paper_configuration() {
        let spec = PipelineSpec::new(PipelineVariant::TofinoA);
        let cfg = spec.core_config().unwrap();
        assert_eq!(cfg, FpisaConfig::fp32_tofino());
        let full = PipelineSpec::new(PipelineVariant::ExtendedFull);
        assert_eq!(full.core_config().unwrap(), FpisaConfig::fp32_extended());
    }

    #[test]
    fn register_width_follows_format_unless_overridden() {
        let s = PipelineSpec::new(PipelineVariant::TofinoA);
        assert_eq!(s.effective_register_bits(), 32);
        assert_eq!(s.format(FpFormat::FP16).effective_register_bits(), 16);
        assert_eq!(s.format(FpFormat::BF16).effective_register_bits(), 16);
        assert_eq!(
            s.format(FpFormat::FP16)
                .register_bits(32)
                .effective_register_bits(),
            32
        );
    }

    #[test]
    fn invalid_specs_are_rejected_with_the_right_error() {
        let s = PipelineSpec::new(PipelineVariant::TofinoA);
        assert!(matches!(
            s.slots(0).validate(),
            Err(SpecError::SlotsOutOfRange { slots: 0 })
        ));
        assert!(matches!(
            s.slots(MAX_SLOTS + 1).validate(),
            Err(SpecError::SlotsOutOfRange { .. })
        ));
        assert!(matches!(
            s.format(FpFormat::FP64).validate(),
            Err(SpecError::FormatTooWide { bits: 64 })
        ));
        assert!(matches!(
            s.register_bits(48).validate(),
            Err(SpecError::RegisterTooWide { bits: 48 })
        ));
        // FP16 significand (11) + 2 + guard 4 = 17 > 16.
        assert!(matches!(
            s.format(FpFormat::FP16).guard_bits(4).validate(),
            Err(SpecError::RegisterTooNarrow {
                register_bits: 16,
                required: 17
            })
        ));
        assert!(matches!(
            s.read_rounding(ReadRounding::TowardNegInf).validate(),
            Err(SpecError::UnsupportedRounding(ReadRounding::TowardNegInf))
        ));
    }

    #[test]
    fn valid_specs_produce_validating_programs() {
        for variant in PipelineVariant::all() {
            for format in [FpFormat::FP32, FpFormat::FP16, FpFormat::BF16] {
                for (guard, rounding) in [
                    (0, ReadRounding::TowardZero),
                    (2, ReadRounding::TowardZero),
                    (2, ReadRounding::NearestEven),
                ] {
                    let spec = PipelineSpec::new(variant)
                        .format(format)
                        .guard_bits(guard)
                        .read_rounding(rounding)
                        .slots(8);
                    let (program, _, _) = spec.build().unwrap_or_else(|e| {
                        panic!("{variant:?}/{format:?}/g{guard}/{rounding:?}: {e}")
                    });
                    program
                        .validate()
                        .unwrap_or_else(|e| panic!("{variant:?}/{format:?}: {e}"));
                }
            }
        }
    }

    #[test]
    fn labels_are_distinct_and_informative() {
        let a = PipelineSpec::new(PipelineVariant::TofinoA).label();
        let b = PipelineSpec::new(PipelineVariant::TofinoA)
            .format(FpFormat::FP16)
            .label();
        let c = PipelineSpec::new(PipelineVariant::TofinoA)
            .format(FpFormat::FP16)
            .guard_bits(2)
            .read_rounding(ReadRounding::NearestEven)
            .label();
        assert!(a.contains("FP32"));
        assert!(b.contains("FP16"));
        assert!(c.contains("+g2") && c.contains("RNE"));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(format_name(FpFormat::new(4, 3)), "FP(4,3)");
    }
}
