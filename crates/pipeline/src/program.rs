//! The Fig. 2 dataflow, compiled onto the PISA simulator.
//!
//! One program implements both FPISA packet operations:
//!
//! * **ADD** (`op = 0`): decompose the packed value in `value`, align it to
//!   the slot's scale and fold it into the exponent/mantissa register
//!   arrays — stages 0–5, mirroring MAU0–MAU4 of Fig. 2.
//! * **READ** (`op = 1`): read the slot and renormalize it back to packed
//!   IEEE bits in `result` — the remaining stages, mirroring MAU5–MAU8
//!   (the conversion-back path).
//!
//! Programs are built from a [`crate::PipelineSpec`]: every field width,
//! bias constant, shift-table entry count, headroom/overwrite threshold
//! and the read-out renormalization path is computed from the spec's
//! [`fpisa_core::FpFormat`], register width and guard bits — FP32 in
//! 32-bit registers is just the default point of that space (§3.3). When
//! the spec asks for [`fpisa_core::ReadRounding::NearestEven`], an extra
//! guard-bit-inspection stage sequence (Appendix A.1) is emitted between
//! the renormalization shift and the final pack.
//!
//! The three [`PipelineVariant`]s change *how* alignment shifts happen,
//! which is exactly the paper's hardware argument:
//!
//! * [`PipelineVariant::TofinoA`] — FPISA-A on today's hardware: no
//!   2-operand shift, so every variable shift becomes a **match table**
//!   keyed on the exponent difference with one constant-shift action per
//!   distance; no RSAW, so a too-large incoming exponent **overwrites**
//!   the slot.
//! * [`PipelineVariant::ExtendedA`] — FPISA-A plus the FPISA ALU
//!   (metadata-distance shifts): same numerics, far fewer table entries.
//! * [`PipelineVariant::ExtendedFull`] — full FPISA: metadata shifts plus
//!   the RSAW stateful unit, so the *stored* mantissa is aligned in place
//!   and no overwrite ever happens.
//!
//! Every `(variant × format × rounding)` combination is differentially
//! tested bit-for-bit against [`fpisa_core::FpisaAccumulator`] with the
//! matching [`fpisa_core::FpisaConfig`].

use crate::spec::PipelineSpec;
use fpisa_core::{FpFormat, FpisaConfig, FpisaMode, ReadRounding};
use fpisa_pisa::{
    Action, AluOp, CmpOp, FieldId, KeyMatch, MatchKind, Operand, PhvLayout, RegArrayId,
    RegisterArraySpec, SaluCond, SaluOutput, SaluUpdate, Stage, StatefulCall, SwitchCaps,
    SwitchProgram, Table,
};
use serde::{Deserialize, Serialize};

/// Packet opcode: fold a value into a slot.
pub const OP_ADD: u64 = 0;
/// Packet opcode: read a slot out as packed IEEE bits.
pub const OP_READ: u64 = 1;

/// Which hardware/algorithm combination the program targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineVariant {
    /// FPISA-A on unmodified Tofino: shift-by-table, overwrite on large
    /// exponent jumps.
    TofinoA,
    /// FPISA-A with the 2-operand-shift ALU extension.
    ExtendedA,
    /// Full FPISA: 2-operand shifts plus the RSAW stateful unit.
    ExtendedFull,
}

impl PipelineVariant {
    /// All variants, in Table 3 order.
    pub fn all() -> [PipelineVariant; 3] {
        [
            PipelineVariant::TofinoA,
            PipelineVariant::ExtendedA,
            PipelineVariant::ExtendedFull,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineVariant::TofinoA => "FPISA-A (Tofino)",
            PipelineVariant::ExtendedA => "FPISA-A (+shift ALU)",
            PipelineVariant::ExtendedFull => "FPISA (full, RSAW)",
        }
    }

    /// The accumulator mode this variant computes.
    pub fn mode(&self) -> FpisaMode {
        match self {
            PipelineVariant::TofinoA | PipelineVariant::ExtendedA => FpisaMode::Approximate,
            PipelineVariant::ExtendedFull => FpisaMode::Full,
        }
    }

    /// The capability profile this variant requires.
    pub fn caps(&self) -> SwitchCaps {
        match self {
            PipelineVariant::TofinoA => SwitchCaps::tofino(),
            PipelineVariant::ExtendedA => SwitchCaps {
                metadata_shift: true,
                ..SwitchCaps::tofino()
            },
            PipelineVariant::ExtendedFull => SwitchCaps::fpisa_extended(),
        }
    }

    /// The `fpisa-core` configuration of the *default* spec for this
    /// variant (FP32 in 32-bit registers, no guard bits, saturating
    /// overflow, truncating read-out). Pipelines built from an explicit
    /// [`crate::PipelineSpec`] report their own configuration via
    /// [`crate::FpisaPipeline::core_config`].
    pub fn core_config(&self) -> FpisaConfig {
        match self.mode() {
            FpisaMode::Approximate => FpisaConfig::fp32_tofino(),
            FpisaMode::Full => FpisaConfig::fp32_extended(),
        }
    }
}

/// The PHV fields of the nearest-even read-out sequence (Appendix A.1),
/// present only when the spec configures
/// [`fpisa_core::ReadRounding::NearestEven`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoundFields {
    /// Mask covering the bits dropped by the renormalization shift.
    pub(crate) mask: FieldId,
    /// Half-ulp threshold (`2^(shift-1)`).
    pub(crate) half: FieldId,
    /// The dropped bits (`mag & mask`).
    pub(crate) rem: FieldId,
    /// `rem > half`.
    pub(crate) gt: FieldId,
    /// `rem == half` (the tie case).
    pub(crate) eqh: FieldId,
    /// Lowest kept bit (ties round to even).
    pub(crate) odd: FieldId,
    /// `rem != 0` (any information dropped at all).
    pub(crate) rem_nz: FieldId,
    /// The final +1 round-up decision.
    pub(crate) rnd: FieldId,
    /// Rounding carried past the normal significand width.
    pub(crate) carry_n: FieldId,
    /// Rounding carried a subnormal into the normal range.
    pub(crate) carry_s: FieldId,
}

/// The PHV fields the program uses. Public so tests and the driver can
/// inject/extract packets.
#[derive(Debug, Clone)]
pub struct Fields {
    /// Packet opcode ([`OP_ADD`] or [`OP_READ`]).
    pub op: FieldId,
    /// Aggregation slot index.
    pub slot: FieldId,
    /// Packed input value in the spec's format (ADD).
    pub value: FieldId,
    /// Packed output value in the spec's format (READ).
    pub result: FieldId,
    /// Set for ±0 inputs: the packet skips all state updates.
    pub skip: FieldId,

    // -- decompose (MAU0/MAU1) --
    pub(crate) sign: FieldId,
    pub(crate) e_in: FieldId,
    pub(crate) frac: FieldId,
    pub(crate) sig: FieldId,
    pub(crate) man_in: FieldId,
    pub(crate) e_in_mh: FieldId,

    // -- align + accumulate (MAU2-MAU4) --
    pub(crate) e_old: FieldId,
    pub(crate) d1: FieldId,
    pub(crate) d2: FieldId,
    pub(crate) bigger: FieldId,
    pub(crate) p_empty: Option<FieldId>,
    pub(crate) p_far: Option<FieldId>,
    pub(crate) wr: Option<FieldId>,
    pub(crate) man_shifted: FieldId,

    // -- read-out / renormalize (MAU5-MAU8) --
    pub(crate) man_r: FieldId,
    pub(crate) neg: FieldId,
    pub(crate) rz: FieldId,
    pub(crate) mag: FieldId,
    pub(crate) top: FieldId,
    pub(crate) shift_amt: FieldId,
    pub(crate) exp_field: FieldId,
    pub(crate) sub: FieldId,
    pub(crate) inf: FieldId,
    pub(crate) extra: FieldId,
    pub(crate) frac_shift: FieldId,
    pub(crate) fs_neg: FieldId,
    pub(crate) nfs: Option<FieldId>,
    pub(crate) sig_out: FieldId,
    pub(crate) exp_out: FieldId,
    pub(crate) t2: FieldId,

    // -- nearest-even rounding (Appendix A.1) --
    pub(crate) round: Option<RoundFields>,
}

/// The two register arrays of Fig. 3.
#[derive(Debug, Clone, Copy)]
pub struct Arrays {
    /// Biased-exponent array (stage 2; 0 = empty slot).
    pub exponent: RegArrayId,
    /// Signed-mantissa array (stage 5).
    pub mantissa: RegArrayId,
}

/// Every format/width-derived dimension the stage builders need, computed
/// once from the spec's [`FpisaConfig`].
#[derive(Debug, Clone, Copy)]
struct Dims {
    format: FpFormat,
    /// Guard bits below the mantissa (Appendix A.1).
    guard: u32,
    /// Mantissa-register width in bits.
    reg: u32,
    /// Left-shift headroom of the denormalized representation (§3.3).
    headroom: u32,
    /// Approximate (FPISA-A) vs full (RSAW) dataflow.
    approx: bool,
    /// Whether the nearest-even read-out sequence is emitted.
    nearest_even: bool,
}

impl Dims {
    fn of(spec: &PipelineSpec, cfg: &FpisaConfig) -> Self {
        Dims {
            format: cfg.format,
            guard: cfg.guard_bits,
            reg: cfg.register_bits,
            headroom: cfg.headroom_bits(),
            approx: spec.variant().mode() == FpisaMode::Approximate,
            nearest_even: cfg.read_rounding == ReadRounding::NearestEven,
        }
    }

    /// Mantissa bits + guard bits: the bit position of the normalized
    /// leading one inside the register.
    fn man_g(&self) -> u32 {
        self.format.man_bits + self.guard
    }

    /// Largest alignment right-shift worth an exact table entry: past the
    /// reference model's `register_bits + 1` clamp every distance
    /// collapses to the sign fill, and the exponent fields themselves
    /// bound the difference at `max_exp_field - 2`.
    fn align_rshift_max(&self) -> u32 {
        (self.reg + 1).min(self.format.max_exp_field().saturating_sub(2))
    }

    /// Largest renormalization right-shift: the leading one sits at bit
    /// `reg - 1` at most and must land on bit `man_bits`.
    fn frac_rshift_max(&self) -> u32 {
        self.reg - 1 - self.format.man_bits
    }

    /// Largest renormalization left-shift (small residuals after
    /// cancellation): the leading one can sit as low as bit 0.
    fn frac_lshift_max(&self) -> u32 {
        self.man_g()
    }

    /// Mask covering the mantissa register's raw bits.
    fn reg_mask(&self) -> u64 {
        if self.reg >= 64 {
            u64::MAX
        } else {
            (1u64 << self.reg) - 1
        }
    }
}

fn f(id: FieldId) -> Operand {
    Operand::Field(id)
}
fn c(v: i64) -> Operand {
    Operand::Const(v)
}

/// Build the Fig. 2 program for a variant and a slot count with the
/// paper's default configuration (FP32 in 32-bit registers, no guard
/// bits, truncating read-out) — a thin convenience over
/// [`crate::PipelineSpec::build`]. Panics on slot counts outside the
/// 16-bit slot field; use the spec API for fallible construction.
pub fn build_program(variant: PipelineVariant, slots: usize) -> (SwitchProgram, Fields, Arrays) {
    PipelineSpec::new(variant)
        .slots(slots)
        .build()
        .expect("slot count must fit the 16-bit slot field")
}

/// Build the program for a *validated* spec (callers go through
/// [`crate::PipelineSpec::build`], which validates first). The returned
/// program is guaranteed to validate against [`PipelineVariant::caps`].
pub(crate) fn build_for_spec(
    spec: &PipelineSpec,
    cfg: &FpisaConfig,
) -> (SwitchProgram, Fields, Arrays) {
    let variant = spec.variant();
    let caps = variant.caps();
    let d = Dims::of(spec, cfg);
    let fmt = d.format;
    let slots = spec.slot_count();

    let mut l = PhvLayout::new();
    let fields = Fields {
        op: l.field("op", 2),
        slot: l.field("slot", 16),
        // The value/result containers are exactly as wide as the packed
        // format, so out-of-format bits are dropped at parse time the way
        // `FpFormat::unpack` masks them.
        value: l.field("value", fmt.total_bits()),
        result: l.field("result", fmt.total_bits()),
        skip: l.field("skip", 1),
        sign: l.field("sign", 1),
        e_in: l.field("e_in", 32),
        frac: l.field("frac", 32),
        sig: l.field("sig", 32),
        man_in: l.field("man_in", 32),
        e_in_mh: l.field("e_in_mh", 32),
        e_old: l.field("e_old", 32),
        d1: l.field("d1", 32),
        d2: l.field("d2", 32),
        bigger: l.field("bigger", 1),
        p_empty: d.approx.then(|| l.field("p_empty", 1)),
        p_far: d.approx.then(|| l.field("p_far", 1)),
        wr: d.approx.then(|| l.field("wr", 1)),
        man_shifted: l.field("man_shifted", 32),
        man_r: l.field("man_r", 32),
        neg: l.field("neg", 1),
        rz: l.field("rz", 1),
        mag: l.field("mag", 32),
        top: l.field("top", 8),
        shift_amt: l.field("shift_amt", 32),
        exp_field: l.field("exp_field", 32),
        sub: l.field("sub", 1),
        inf: l.field("inf", 1),
        extra: l.field("extra", 32),
        frac_shift: l.field("frac_shift", 32),
        fs_neg: l.field("fs_neg", 1),
        nfs: caps.metadata_shift.then(|| l.field("nfs", 32)),
        sig_out: l.field("sig_out", 32),
        exp_out: l.field("exp_out", 32),
        t2: l.field("t2", 32),
        round: d.nearest_even.then(|| RoundFields {
            mask: l.field("r_mask", 32),
            half: l.field("r_half", 32),
            rem: l.field("r_rem", 32),
            gt: l.field("r_gt", 1),
            eqh: l.field("r_eqh", 1),
            odd: l.field("r_odd", 1),
            rem_nz: l.field("r_rem_nz", 1),
            rnd: l.field("r_rnd", 1),
            carry_n: l.field("r_carry_n", 1),
            carry_s: l.field("r_carry_s", 1),
        }),
    };
    let fd = &fields;

    let arrays = Arrays {
        exponent: RegArrayId(0),
        mantissa: RegArrayId(1),
    };
    let array_specs = vec![
        RegisterArraySpec {
            name: "exp_reg".into(),
            // One bit above the exponent field keeps the stored value
            // non-negative under the SALU's sign-extending reads.
            width_bits: fmt.exp_bits + 1,
            entries: slots,
            stage: 2,
        },
        RegisterArraySpec {
            name: "man_reg".into(),
            width_bits: d.reg,
            entries: slots,
            stage: 5,
        },
    ];

    // ---------------- Stage 0: parse / extract (MAU0) ----------------
    let extract = Action::nop("extract")
        .prim(
            fd.sign,
            AluOp::ShrLogic,
            f(fd.value),
            c(fmt.total_bits() as i64 - 1),
        )
        .prim(
            fd.e_in,
            AluOp::ShrLogic,
            f(fd.value),
            c(fmt.man_bits as i64),
        )
        .prim(
            fd.e_in,
            AluOp::And,
            f(fd.e_in),
            c(fmt.max_exp_field() as i64),
        )
        .prim(
            fd.frac,
            AluOp::And,
            f(fd.value),
            c(fmt.fraction_mask() as i64),
        );
    // Subnormals carry no implied one and live at exponent 1; guard bits
    // shift every incoming significand left by `guard`.
    let mut subnormal = Action::nop("subnormal")
        .set(fd.sig, f(fd.frac))
        .set(fd.e_in, c(1));
    let mut normal =
        Action::nop("normal").prim(fd.sig, AluOp::Or, f(fd.frac), c(fmt.implied_one() as i64));
    if d.guard > 0 {
        subnormal = subnormal.prim(fd.sig, AluOp::Shl, f(fd.sig), c(d.guard as i64));
        normal = normal.prim(fd.sig, AluOp::Shl, f(fd.sig), c(d.guard as i64));
    }
    let classify = Table::keyed(
        "classify",
        vec![(fd.e_in, MatchKind::Exact), (fd.frac, MatchKind::Exact)],
        vec![Action::nop("zero").set(fd.skip, c(1)), subnormal, normal],
        Some(2),
    )
    .entry(vec![KeyMatch::Exact(0), KeyMatch::Exact(0)], 2, 0)
    .entry(vec![KeyMatch::Exact(0), KeyMatch::Any], 1, 1);
    let stage0 = Stage::new()
        .table(Table::always("extract", extract))
        .table(classify);

    // ---------------- Stage 1: two's complement + headroom (MAU1) -----
    let apply_sign = Table::keyed(
        "apply_sign",
        vec![(fd.sign, MatchKind::Exact)],
        vec![
            Action::nop("negate").prim(fd.man_in, AluOp::Sub, c(0), f(fd.sig)),
            Action::nop("copy").set(fd.man_in, f(fd.sig)),
        ],
        Some(1),
    )
    .entry(vec![KeyMatch::Exact(1)], 1, 0);
    let prep =
        Action::nop("headroom").prim(fd.e_in_mh, AluOp::Sub, f(fd.e_in), c(d.headroom as i64));
    let stage1 = Stage::new()
        .table(apply_sign)
        .table(Table::always("prep", prep));

    // ---------------- Stage 2: exponent stateful ALU (MAU2) ----------
    // Stored exponent 0 means "slot empty": every real value has a biased
    // exponent >= 1 (subnormals are installed with exponent 1).
    let exp_cond = if d.approx {
        // Install (empty) or overwrite (further than the headroom).
        SaluCond::Or(
            Box::new(SaluCond::RegCmp {
                cmp: CmpOp::Eq,
                rhs: c(0),
            }),
            Box::new(SaluCond::RegCmp {
                cmp: CmpOp::Lt,
                rhs: f(fd.e_in_mh),
            }),
        )
    } else {
        // Full FPISA: the exponent simply tracks the running maximum.
        SaluCond::RegCmp {
            cmp: CmpOp::Lt,
            rhs: f(fd.e_in),
        }
    };
    let exp_add = Action::nop("exp_add").call(StatefulCall {
        array: arrays.exponent,
        index: f(fd.slot),
        cond: exp_cond,
        on_true: SaluUpdate::Write(f(fd.e_in)),
        on_false: SaluUpdate::Keep,
        output: Some((fd.e_old, SaluOutput::Old)),
    });
    let exp_read = Action::nop("exp_read").call(StatefulCall {
        array: arrays.exponent,
        index: f(fd.slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::Keep,
        on_false: SaluUpdate::Keep,
        output: Some((fd.e_old, SaluOutput::Old)),
    });
    let exp_table = Table::keyed(
        "exponent",
        vec![(fd.op, MatchKind::Exact), (fd.skip, MatchKind::Exact)],
        vec![exp_add, exp_read],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_ADD), KeyMatch::Exact(0)], 1, 0)
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Any], 1, 1);
    let stage2 = Stage::new().table(exp_table);

    // ---------------- Stage 3: exponent difference (MAU2') -----------
    let mut delta = Action::nop("delta")
        .prim(fd.d1, AluOp::Sub, f(fd.e_old), f(fd.e_in))
        .prim(fd.d2, AluOp::Sub, f(fd.e_in), f(fd.e_old))
        .prim(fd.bigger, AluOp::CmpGt, f(fd.e_in), f(fd.e_old));
    if d.approx {
        let (p_empty, p_far, wr) = (fd.p_empty.unwrap(), fd.p_far.unwrap(), fd.wr.unwrap());
        delta = delta
            .prim(p_empty, AluOp::CmpEq, f(fd.e_old), c(0))
            .prim(p_far, AluOp::CmpLt, f(fd.e_old), f(fd.e_in_mh))
            .prim(wr, AluOp::Or, f(p_empty), f(p_far));
    }
    let delta_table = Table::keyed(
        "delta",
        vec![(fd.op, MatchKind::Exact), (fd.skip, MatchKind::Exact)],
        vec![delta],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_ADD), KeyMatch::Exact(0)], 1, 0);
    let stage3 = Stage::new().table(delta_table);

    // ---------------- Stage 4: align the incoming mantissa (MAU3) ----
    let stage4 = Stage::new().table(build_align_table(variant, &d, fd));

    // ---------------- Stage 5: mantissa stateful ALU (MAU4) ----------
    let man_update = if d.approx {
        StatefulCall {
            array: arrays.mantissa,
            index: f(fd.slot),
            cond: SaluCond::MetaNonZero(fd.wr.unwrap()),
            // Install/overwrite takes the unshifted mantissa; otherwise a
            // saturating RAW add of the aligned one.
            on_true: SaluUpdate::Write(f(fd.man_in)),
            on_false: SaluUpdate::AddSat(f(fd.man_shifted)),
            output: None,
        }
    } else {
        StatefulCall {
            array: arrays.mantissa,
            index: f(fd.slot),
            cond: SaluCond::MetaNonZero(fd.bigger),
            // RSAW: align the *stored* value, then add the incoming one.
            on_true: SaluUpdate::ShiftRightAddSat {
                shift: f(fd.d2),
                addend: f(fd.man_in),
            },
            on_false: SaluUpdate::AddSat(f(fd.man_shifted)),
            output: None,
        }
    };
    let man_add = Action::nop("man_add").call(man_update);
    let man_read = Action::nop("man_read").call(StatefulCall {
        array: arrays.mantissa,
        index: f(fd.slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::Keep,
        on_false: SaluUpdate::Keep,
        output: Some((fd.man_r, SaluOutput::Old)),
    });
    let man_table = Table::keyed(
        "mantissa",
        vec![(fd.op, MatchKind::Exact), (fd.skip, MatchKind::Exact)],
        vec![man_add, man_read],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_ADD), KeyMatch::Exact(0)], 1, 0)
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Any], 1, 1);
    let stage5 = Stage::new().table(man_table);

    // ---------------- Stage 6: sign + magnitude (MAU5) ---------------
    let read_flags = Table::keyed(
        "read_flags",
        vec![(fd.op, MatchKind::Exact)],
        vec![Action::nop("flags")
            .prim(fd.neg, AluOp::CmpLt, f(fd.man_r), c(0))
            .prim(fd.rz, AluOp::CmpEq, f(fd.man_r), c(0))],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ)], 1, 0);
    let absval = Table::keyed(
        "absval",
        vec![(fd.op, MatchKind::Exact), (fd.neg, MatchKind::Exact)],
        vec![
            Action::nop("neg_mag").prim(fd.mag, AluOp::Sub, c(0), f(fd.man_r)),
            Action::nop("pos_mag").set(fd.mag, f(fd.man_r)),
        ],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(1)], 1, 0)
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(0)], 1, 1);
    let stage6 = Stage::new().table(read_flags).table(absval);

    // ---------------- Stage 7: leading-one via TCAM LPM (MAU6) -------
    // The Fig. 5 trick: one ternary entry per leading-one position of the
    // register — `register_bits` entries instead of a priority encoder.
    let mut lpm = Table::keyed(
        "find_top",
        vec![(fd.op, MatchKind::Exact), (fd.mag, MatchKind::Ternary)],
        (0..d.reg)
            .map(|t| Action::nop(format!("top{t}")).set(fd.top, c(t as i64)))
            .collect(),
        None,
    );
    for t in 0..d.reg {
        let mask = (!((1u64 << t) - 1)) & d.reg_mask();
        lpm = lpm.entry(
            vec![
                KeyMatch::Exact(OP_READ),
                KeyMatch::Ternary {
                    value: 1u64 << t,
                    mask,
                },
            ],
            t + 1,
            t as usize,
        );
    }
    let stage7 = Stage::new().table(lpm);

    // ---------------- Stage 8: renormalization arithmetic (MAU7) -----
    let norm = Table::keyed(
        "normalize",
        vec![(fd.op, MatchKind::Exact)],
        vec![Action::nop("norm")
            .prim(fd.shift_amt, AluOp::Sub, f(fd.top), c(d.man_g() as i64))
            .prim(fd.exp_field, AluOp::Add, f(fd.e_old), f(fd.shift_amt))
            .prim(fd.sub, AluOp::CmpLt, f(fd.exp_field), c(1))
            .prim(
                fd.inf,
                AluOp::CmpGe,
                f(fd.exp_field),
                c(fmt.max_exp_field() as i64),
            )
            .prim(fd.extra, AluOp::Sub, c(1), f(fd.exp_field))],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ)], 1, 0);
    // The total right-shift also drops the guard bits; subnormal outputs
    // shift further so the value lines up with the fixed 1-bias scale.
    let subsel = Table::keyed(
        "subnormal_select",
        vec![(fd.op, MatchKind::Exact), (fd.sub, MatchKind::Exact)],
        vec![
            Action::nop("normal_out")
                .prim(
                    fd.frac_shift,
                    AluOp::Add,
                    f(fd.shift_amt),
                    c(d.guard as i64),
                )
                .set(fd.exp_out, f(fd.exp_field))
                .prim(fd.fs_neg, AluOp::CmpLt, f(fd.frac_shift), c(0)),
            Action::nop("subnormal_out")
                .prim(fd.frac_shift, AluOp::Add, f(fd.shift_amt), f(fd.extra))
                .prim(
                    fd.frac_shift,
                    AluOp::Add,
                    f(fd.frac_shift),
                    c(d.guard as i64),
                )
                .set(fd.exp_out, c(0))
                .prim(fd.fs_neg, AluOp::CmpLt, f(fd.frac_shift), c(0)),
        ],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(0)], 1, 0)
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(1)], 1, 1);
    let stage8 = Stage::new().table(norm).table(subsel);

    // ---------------- Stage 9: final mantissa shift (MAU8) -----------
    let mut stage9 = Stage::new().table(build_fracshift_table(variant, &d, fd));
    let mask_tbl = Table::keyed(
        "mask_frac",
        vec![(fd.op, MatchKind::Exact)],
        vec![Action::nop("mask").prim(
            fd.frac,
            AluOp::And,
            f(fd.sig_out),
            c(fmt.fraction_mask() as i64),
        )],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ)], 1, 0);

    // ---------------- Optional stage: nearest-even round (App. A.1) --
    let round_stage = if d.nearest_even {
        stage9 = stage9.table(build_round_prep_table(variant, &d, fd));
        Some(build_round_stage(&d, fd, mask_tbl.clone()))
    } else {
        stage9 = stage9.table(mask_tbl);
        None
    };

    // ---------------- Final stage: pack (MAU8') -----------------------
    let pack = Table::keyed(
        "pack",
        vec![
            (fd.op, MatchKind::Exact),
            (fd.rz, MatchKind::Exact),
            (fd.inf, MatchKind::Exact),
        ],
        vec![
            Action::nop("pack_zero").set(fd.result, c(0)),
            // Both pack actions accumulate straight into `result` (every
            // intermediate fits the format's width), keeping the
            // same-destination chains adjacent so the compiled engine's
            // peephole pass fuses them into superinstructions.
            Action::nop("pack_inf")
                .prim(
                    fd.result,
                    AluOp::Shl,
                    f(fd.neg),
                    c(fmt.total_bits() as i64 - 1),
                )
                .prim(
                    fd.result,
                    AluOp::Or,
                    f(fd.result),
                    c(fmt.infinity_bits(false) as i64),
                ),
            Action::nop("pack_value")
                .prim(fd.t2, AluOp::Shl, f(fd.exp_out), c(fmt.man_bits as i64))
                .prim(
                    fd.result,
                    AluOp::Shl,
                    f(fd.neg),
                    c(fmt.total_bits() as i64 - 1),
                )
                .prim(fd.result, AluOp::Or, f(fd.result), f(fd.t2))
                .prim(fd.result, AluOp::Or, f(fd.result), f(fd.frac)),
        ],
        None,
    )
    .entry(
        vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(1), KeyMatch::Any],
        3,
        0,
    )
    .entry(
        vec![
            KeyMatch::Exact(OP_READ),
            KeyMatch::Exact(0),
            KeyMatch::Exact(1),
        ],
        2,
        1,
    )
    .entry(
        vec![
            KeyMatch::Exact(OP_READ),
            KeyMatch::Exact(0),
            KeyMatch::Exact(0),
        ],
        1,
        2,
    );
    let pack_stage = Stage::new().table(pack);

    let mut stages = vec![
        stage0, stage1, stage2, stage3, stage4, stage5, stage6, stage7, stage8, stage9,
    ];
    if let Some(s) = round_stage {
        stages.push(s);
    }
    stages.push(pack_stage);

    let program = SwitchProgram {
        caps,
        layout: l,
        stages,
        arrays: array_specs,
        recirc_field: None,
    };
    (program, fields, arrays)
}

/// Stage-4 alignment of the incoming mantissa (MAU3). On extended
/// hardware this is one action per path using metadata-distance shifts; on
/// Tofino it is the paper's shift-offset match table keyed on the exponent
/// difference, with one constant-shift action per distance — so its entry
/// count scales with the register width and headroom of the spec's
/// format.
fn build_align_table(variant: PipelineVariant, d: &Dims, fd: &Fields) -> Table {
    match variant {
        PipelineVariant::ExtendedA | PipelineVariant::ExtendedFull => {
            let mut keys = vec![(fd.op, MatchKind::Exact), (fd.skip, MatchKind::Exact)];
            if d.approx {
                keys.push((fd.wr.unwrap(), MatchKind::Exact));
            }
            keys.push((fd.bigger, MatchKind::Exact));
            let copy = Action::nop("keep_unshifted").set(fd.man_shifted, f(fd.man_in));
            let shr = Action::nop("shr_meta").prim(
                fd.man_shifted,
                AluOp::ShrArith,
                f(fd.man_in),
                f(fd.d1),
            );
            let mut t;
            if d.approx {
                let shl = Action::nop("shl_meta").prim(
                    fd.man_shifted,
                    AluOp::Shl,
                    f(fd.man_in),
                    f(fd.d2),
                );
                t = Table::keyed("align", keys, vec![copy, shr, shl], None)
                    // wr: the unshifted mantissa is written; shift is moot.
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(1),
                            KeyMatch::Any,
                        ],
                        3,
                        0,
                    )
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(1),
                        ],
                        2,
                        2,
                    )
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(0),
                        ],
                        1,
                        1,
                    );
            } else {
                // Full FPISA: a larger incoming exponent leaves the incoming
                // mantissa unshifted (the RSAW unit aligns the stored one).
                t = Table::keyed("align", keys, vec![copy, shr], None)
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(1),
                        ],
                        2,
                        0,
                    )
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(0),
                        ],
                        1,
                        1,
                    );
            }
            t = t.with_capacity(8);
            t
        }
        PipelineVariant::TofinoA => {
            // No 2-operand shift: enumerate the shift distances as exact
            // matches on the (two's complement) exponent difference d2.
            let rshift_max = d.align_rshift_max();
            let mut actions: Vec<Action> = Vec::new();
            let mut t = Table::keyed(
                "align_shift_table",
                vec![
                    (fd.op, MatchKind::Exact),
                    (fd.skip, MatchKind::Exact),
                    (fd.bigger, MatchKind::Exact),
                    (fd.d2, MatchKind::Exact),
                ],
                Vec::new(),
                None,
            );
            // Left shifts: d2 in 1..=headroom (past that, wr takes over and
            // the shifted value is unused).
            for k in 1..=d.headroom {
                actions.push(Action::nop(format!("shl{k}")).prim(
                    fd.man_shifted,
                    AluOp::Shl,
                    f(fd.man_in),
                    c(k as i64),
                ));
            }
            // Right shifts: d2 = -k (mod 2^32) for k in 0..=rshift_max.
            for k in 0..=rshift_max {
                actions.push(Action::nop(format!("shr{k}")).prim(
                    fd.man_shifted,
                    AluOp::ShrArith,
                    f(fd.man_in),
                    c(k as i64),
                ));
            }
            // Distances past the enumerated range collapse to the sign
            // fill, exactly like the reference model's clamped barrel
            // shifter.
            let default = actions.len();
            actions.push(Action::nop("shr_all").prim(
                fd.man_shifted,
                AluOp::ShrArith,
                f(fd.man_in),
                c(63),
            ));
            t.actions = actions;
            t.default_action = Some(default);
            for k in 1..=d.headroom {
                t = t.entry(
                    vec![
                        KeyMatch::Exact(OP_ADD),
                        KeyMatch::Exact(0),
                        KeyMatch::Exact(1),
                        KeyMatch::Exact(k as u64),
                    ],
                    2,
                    (k - 1) as usize,
                );
            }
            for k in 0..=rshift_max {
                let d2 = (k as i64).wrapping_neg() as u64 & 0xFFFF_FFFF;
                t = t.entry(
                    vec![
                        KeyMatch::Exact(OP_ADD),
                        KeyMatch::Exact(0),
                        KeyMatch::Exact(0),
                        KeyMatch::Exact(d2),
                    ],
                    2,
                    d.headroom as usize + k as usize,
                );
            }
            t
        }
    }
}

/// Stage-9 renormalization shift: `sig_out = mag >> frac_shift` (or `<<`
/// for negative distances). Same table-vs-metadata split as stage 4; the
/// enumerated distances are bounded by where the register's leading one
/// can sit relative to the format's mantissa width.
fn build_fracshift_table(variant: PipelineVariant, d: &Dims, fd: &Fields) -> Table {
    match variant {
        PipelineVariant::ExtendedA | PipelineVariant::ExtendedFull => {
            let nfs = fd.nfs.unwrap();
            Table::keyed(
                "frac_shift",
                vec![(fd.op, MatchKind::Exact), (fd.fs_neg, MatchKind::Exact)],
                vec![
                    Action::nop("shr_meta").prim(
                        fd.sig_out,
                        AluOp::ShrLogic,
                        f(fd.mag),
                        f(fd.frac_shift),
                    ),
                    Action::nop("shl_meta")
                        .prim(nfs, AluOp::Sub, c(0), f(fd.frac_shift))
                        .prim(fd.sig_out, AluOp::Shl, f(fd.mag), f(nfs)),
                ],
                None,
            )
            .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(0)], 1, 0)
            .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(1)], 1, 1)
            .with_capacity(4)
        }
        PipelineVariant::TofinoA => {
            let (rmax, lmax) = (d.frac_rshift_max(), d.frac_lshift_max());
            let mut actions: Vec<Action> = Vec::new();
            let mut t = Table::keyed(
                "frac_shift_table",
                vec![(fd.op, MatchKind::Exact), (fd.frac_shift, MatchKind::Exact)],
                Vec::new(),
                None,
            );
            for k in 0..=rmax {
                actions.push(Action::nop(format!("shr{k}")).prim(
                    fd.sig_out,
                    AluOp::ShrLogic,
                    f(fd.mag),
                    c(k as i64),
                ));
            }
            for k in 1..=lmax {
                actions.push(Action::nop(format!("shl{k}")).prim(
                    fd.sig_out,
                    AluOp::Shl,
                    f(fd.mag),
                    c(k as i64),
                ));
            }
            // Unreachable for well-formed register states; provisioned so a
            // miss cannot leak a stale container.
            let default = actions.len();
            actions.push(Action::nop("shift_out").set(fd.sig_out, c(0)));
            t.actions = actions;
            t.default_action = Some(default);
            for k in 0..=rmax {
                t = t.entry(
                    vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(k as u64)],
                    1,
                    k as usize,
                );
            }
            for k in 1..=lmax {
                let v = (k as i64).wrapping_neg() as u64 & 0xFFFF_FFFF;
                t = t.entry(
                    vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(v)],
                    1,
                    rmax as usize + k as usize,
                );
            }
            t
        }
    }
}

/// The rounding-constant table of the nearest-even read-out (Appendix
/// A.1): for each right-shift distance `s`, the mask covering the dropped
/// bits and the half-way threshold. On Tofino this is one match entry per
/// distance; with the FPISA ALU the constants are computed by two
/// metadata shifts. Left shifts drop no bits — the fields stay zero and
/// the guarded round decision is 0.
fn build_round_prep_table(variant: PipelineVariant, d: &Dims, fd: &Fields) -> Table {
    let r = fd.round.as_ref().unwrap();
    match variant {
        PipelineVariant::ExtendedA | PipelineVariant::ExtendedFull => Table::keyed(
            "round_prep",
            vec![(fd.op, MatchKind::Exact), (fd.fs_neg, MatchKind::Exact)],
            vec![Action::nop("round_consts")
                .prim(r.mask, AluOp::Shl, c(1), f(fd.frac_shift))
                .prim(r.half, AluOp::ShrLogic, f(r.mask), c(1))
                .prim(r.mask, AluOp::Sub, f(r.mask), c(1))],
            None,
        )
        .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(0)], 1, 0)
        .with_capacity(2),
        PipelineVariant::TofinoA => {
            let rmax = d.frac_rshift_max();
            let mut actions: Vec<Action> = Vec::new();
            let mut t = Table::keyed(
                "round_prep_table",
                vec![
                    (fd.op, MatchKind::Exact),
                    (fd.fs_neg, MatchKind::Exact),
                    (fd.frac_shift, MatchKind::Exact),
                ],
                Vec::new(),
                None,
            );
            for s in 1..=rmax {
                actions.push(
                    Action::nop(format!("consts{s}"))
                        .set(r.mask, c(((1u64 << s) - 1) as i64))
                        .set(r.half, c((1u64 << (s - 1)) as i64)),
                );
            }
            t.actions = actions;
            for s in 1..=rmax {
                t = t.entry(
                    vec![
                        KeyMatch::Exact(OP_READ),
                        KeyMatch::Exact(0),
                        KeyMatch::Exact(s as u64),
                    ],
                    1,
                    (s - 1) as usize,
                );
            }
            t
        }
    }
}

/// The nearest-even rounding stage (Appendix A.1), inserted between the
/// renormalization shift and the pack stage:
///
/// 1. inspect the dropped (guard) bits: `rem = mag & mask`, compare
///    against the half-way threshold and the lowest kept bit;
/// 2. add the round-up decision to the shifted significand;
/// 3. handle the carry: a normal significand that overflows its binade
///    shifts right and raises the exponent, a subnormal that reaches the
///    implied-one position is promoted to exponent 1 — then the infinity
///    flag is recomputed from the post-carry exponent.
fn build_round_stage(d: &Dims, fd: &Fields, mask_tbl: Table) -> Stage {
    let r = fd.round.as_ref().unwrap();
    let fmt = d.format;
    let apply = Table::keyed(
        "round_apply",
        vec![(fd.op, MatchKind::Exact)],
        vec![Action::nop("round")
            .prim(r.rem, AluOp::And, f(fd.mag), f(r.mask))
            .prim(r.gt, AluOp::CmpGt, f(r.rem), f(r.half))
            .prim(r.eqh, AluOp::CmpEq, f(r.rem), f(r.half))
            .prim(r.odd, AluOp::And, f(fd.sig_out), c(1))
            .prim(r.rem_nz, AluOp::CmpNe, f(r.rem), c(0))
            .prim(r.rnd, AluOp::And, f(r.eqh), f(r.odd))
            .prim(r.rnd, AluOp::Or, f(r.gt), f(r.rnd))
            .prim(r.rnd, AluOp::And, f(r.rem_nz), f(r.rnd))
            .prim(fd.sig_out, AluOp::Add, f(fd.sig_out), f(r.rnd))
            .prim(
                r.carry_n,
                AluOp::CmpGe,
                f(fd.sig_out),
                c((fmt.implied_one() << 1) as i64),
            )
            .prim(
                r.carry_s,
                AluOp::CmpGe,
                f(fd.sig_out),
                c(fmt.implied_one() as i64),
            )],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ)], 1, 0);

    let max_exp = c(fmt.max_exp_field() as i64);
    let carry = Table::keyed(
        "round_carry",
        vec![
            (fd.op, MatchKind::Exact),
            (fd.sub, MatchKind::Exact),
            (r.carry_n, MatchKind::Exact),
            (r.carry_s, MatchKind::Exact),
        ],
        vec![
            Action::nop("carry_normal")
                .prim(fd.sig_out, AluOp::ShrLogic, f(fd.sig_out), c(1))
                .prim(fd.exp_out, AluOp::Add, f(fd.exp_out), c(1))
                .prim(fd.inf, AluOp::CmpGe, f(fd.exp_out), max_exp),
            Action::nop("promote_subnormal").set(fd.exp_out, c(1)).prim(
                fd.inf,
                AluOp::CmpGe,
                f(fd.exp_out),
                max_exp,
            ),
            Action::nop("no_carry").prim(fd.inf, AluOp::CmpGe, f(fd.exp_out), max_exp),
        ],
        None,
    )
    .entry(
        vec![
            KeyMatch::Exact(OP_READ),
            KeyMatch::Exact(0),
            KeyMatch::Exact(1),
            KeyMatch::Any,
        ],
        3,
        0,
    )
    .entry(
        vec![
            KeyMatch::Exact(OP_READ),
            KeyMatch::Exact(1),
            KeyMatch::Any,
            KeyMatch::Exact(1),
        ],
        2,
        1,
    )
    .entry(
        vec![
            KeyMatch::Exact(OP_READ),
            KeyMatch::Any,
            KeyMatch::Any,
            KeyMatch::Any,
        ],
        1,
        2,
    );

    Stage::new().table(apply).table(carry).table(mask_tbl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate_against_their_caps() {
        for v in PipelineVariant::all() {
            let (program, _, _) = build_program(v, 64);
            program.validate().unwrap_or_else(|e| panic!("{v:?}: {e}"));
            assert_eq!(program.stages.len(), 11);
        }
    }

    #[test]
    fn nearest_even_specs_emit_the_extra_round_stage() {
        for v in PipelineVariant::all() {
            let spec = PipelineSpec::new(v)
                .guard_bits(2)
                .read_rounding(ReadRounding::NearestEven)
                .slots(4);
            let (program, fields, _) = spec.build().unwrap();
            program.validate().unwrap_or_else(|e| panic!("{v:?}: {e}"));
            assert_eq!(program.stages.len(), 12, "{v:?}");
            assert!(fields.round.is_some(), "{v:?} must carry round fields");
            let names: Vec<&str> = program
                .stages
                .iter()
                .flat_map(|s| &s.tables)
                .map(|t| t.name.as_str())
                .collect();
            assert!(names.iter().any(|n| n.starts_with("round_prep")), "{v:?}");
            assert!(names.contains(&"round_apply") && names.contains(&"round_carry"));
        }
    }

    #[test]
    fn register_arrays_follow_the_spec_widths() {
        let spec = PipelineSpec::new(PipelineVariant::TofinoA)
            .format(FpFormat::FP16)
            .slots(8);
        let (program, _, _) = spec.build().unwrap();
        // FP16: 5 exponent bits (+1 for sign-safe compares), 16-bit
        // native mantissa registers.
        assert_eq!(program.arrays[0].width_bits, 6);
        assert_eq!(program.arrays[1].width_bits, 16);
        // The leading-one LPM table has one entry per register bit.
        let lpm = program
            .stages
            .iter()
            .flat_map(|s| &s.tables)
            .find(|t| t.name == "find_top")
            .unwrap();
        assert_eq!(lpm.entries.len(), 16);
    }

    #[test]
    fn extended_programs_are_rejected_on_baseline_hardware() {
        for v in [PipelineVariant::ExtendedA, PipelineVariant::ExtendedFull] {
            let (mut program, _, _) = build_program(v, 4);
            program.caps = SwitchCaps::tofino();
            assert!(
                program.validate().is_err(),
                "{v:?} must need the extensions"
            );
        }
    }

    #[test]
    fn tofino_variant_uses_no_extension_features() {
        let (program, _, _) = build_program(PipelineVariant::TofinoA, 4);
        assert!(!program.caps.rsaw && !program.caps.metadata_shift);
        // Re-validating under explicitly baseline caps must also pass.
        let mut p = program;
        p.caps = SwitchCaps::tofino();
        p.validate().unwrap();
    }

    #[test]
    fn shift_tables_exist_only_on_tofino() {
        let (tof, _, _) = build_program(PipelineVariant::TofinoA, 4);
        let (ext, _, _) = build_program(PipelineVariant::ExtendedFull, 4);
        let entries = |p: &SwitchProgram| -> usize {
            p.stages
                .iter()
                .flat_map(|s| &s.tables)
                .map(|t| t.entries.len())
                .sum()
        };
        assert!(
            entries(&tof) > entries(&ext) + 30,
            "Tofino profile must pay for shifts in table entries ({} vs {})",
            entries(&tof),
            entries(&ext)
        );
    }

    #[test]
    fn narrow_formats_need_fewer_shift_entries_on_tofino() {
        let shift_entries = |format: FpFormat| -> u64 {
            let (program, _, _) = PipelineSpec::new(PipelineVariant::TofinoA)
                .format(format)
                .slots(4)
                .build()
                .unwrap();
            crate::report::shift_table_entries(&program)
        };
        let fp32 = shift_entries(FpFormat::FP32);
        let fp16 = shift_entries(FpFormat::FP16);
        let bf16 = shift_entries(FpFormat::BF16);
        assert!(
            fp16 < fp32,
            "FP16 shift tables must shrink ({fp16} vs {fp32})"
        );
        assert!(
            bf16 < fp32,
            "BF16 shift tables must shrink ({bf16} vs {fp32})"
        );
    }
}
