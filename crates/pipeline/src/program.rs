//! The Fig. 2 dataflow, compiled onto the PISA simulator.
//!
//! One program implements both FPISA packet operations:
//!
//! * **ADD** (`op = 0`): decompose the packed FP32 in `value`, align it to
//!   the slot's scale and fold it into the exponent/mantissa register
//!   arrays — stages 0–5, mirroring MAU0–MAU4 of Fig. 2.
//! * **READ** (`op = 1`): read the slot and renormalize it back to packed
//!   IEEE bits in `result` — stages 6–10, mirroring MAU5–MAU8 (the
//!   conversion-back path), with truncating (toward-zero) rounding.
//!
//! The three [`PipelineVariant`]s change *how* alignment shifts happen,
//! which is exactly the paper's hardware argument:
//!
//! * [`PipelineVariant::TofinoA`] — FPISA-A on today's hardware: no
//!   2-operand shift, so every variable shift becomes a **match table**
//!   keyed on the exponent difference with one constant-shift action per
//!   distance; no RSAW, so a too-large incoming exponent **overwrites**
//!   the slot.
//! * [`PipelineVariant::ExtendedA`] — FPISA-A plus the FPISA ALU
//!   (metadata-distance shifts): same numerics, far fewer table entries.
//! * [`PipelineVariant::ExtendedFull`] — full FPISA: metadata shifts plus
//!   the RSAW stateful unit, so the *stored* mantissa is aligned in place
//!   and no overwrite ever happens.
//!
//! Every variant is differentially tested bit-for-bit against
//! [`fpisa_core::FpisaAccumulator`] with the matching
//! [`fpisa_core::FpisaMode`].

use fpisa_core::{FpisaConfig, FpisaMode};
use fpisa_pisa::{
    Action, AluOp, CmpOp, FieldId, KeyMatch, MatchKind, Operand, PhvLayout, RegArrayId,
    RegisterArraySpec, SaluCond, SaluOutput, SaluUpdate, Stage, StatefulCall, SwitchCaps,
    SwitchProgram, Table,
};
use serde::{Deserialize, Serialize};

/// Packet opcode: fold a value into a slot.
pub const OP_ADD: u64 = 0;
/// Packet opcode: read a slot out as packed IEEE bits.
pub const OP_READ: u64 = 1;

/// Which hardware/algorithm combination the program targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineVariant {
    /// FPISA-A on unmodified Tofino: shift-by-table, overwrite on large
    /// exponent jumps.
    TofinoA,
    /// FPISA-A with the 2-operand-shift ALU extension.
    ExtendedA,
    /// Full FPISA: 2-operand shifts plus the RSAW stateful unit.
    ExtendedFull,
}

impl PipelineVariant {
    /// All variants, in Table 3 order.
    pub fn all() -> [PipelineVariant; 3] {
        [
            PipelineVariant::TofinoA,
            PipelineVariant::ExtendedA,
            PipelineVariant::ExtendedFull,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineVariant::TofinoA => "FPISA-A (Tofino)",
            PipelineVariant::ExtendedA => "FPISA-A (+shift ALU)",
            PipelineVariant::ExtendedFull => "FPISA (full, RSAW)",
        }
    }

    /// The accumulator mode this variant computes.
    pub fn mode(&self) -> FpisaMode {
        match self {
            PipelineVariant::TofinoA | PipelineVariant::ExtendedA => FpisaMode::Approximate,
            PipelineVariant::ExtendedFull => FpisaMode::Full,
        }
    }

    /// The capability profile this variant requires.
    pub fn caps(&self) -> SwitchCaps {
        match self {
            PipelineVariant::TofinoA => SwitchCaps::tofino(),
            PipelineVariant::ExtendedA => SwitchCaps {
                metadata_shift: true,
                ..SwitchCaps::tofino()
            },
            PipelineVariant::ExtendedFull => SwitchCaps::fpisa_extended(),
        }
    }

    /// The `fpisa-core` configuration this variant reproduces
    /// (FP32 in 32-bit registers, no guard bits, saturating overflow,
    /// truncating read-out).
    pub fn core_config(&self) -> FpisaConfig {
        match self.mode() {
            FpisaMode::Approximate => FpisaConfig::fp32_tofino(),
            FpisaMode::Full => FpisaConfig::fp32_extended(),
        }
    }
}

/// The PHV fields the program uses. Public so tests and the driver can
/// inject/extract packets.
#[derive(Debug, Clone)]
pub struct Fields {
    /// Packet opcode ([`OP_ADD`] or [`OP_READ`]).
    pub op: FieldId,
    /// Aggregation slot index.
    pub slot: FieldId,
    /// Packed FP32 input (ADD).
    pub value: FieldId,
    /// Packed FP32 output (READ).
    pub result: FieldId,
    /// Set for ±0 inputs: the packet skips all state updates.
    pub skip: FieldId,

    // -- decompose (MAU0/MAU1) --
    pub(crate) sign: FieldId,
    pub(crate) e_in: FieldId,
    pub(crate) frac: FieldId,
    pub(crate) sig: FieldId,
    pub(crate) man_in: FieldId,
    pub(crate) e_in_mh: FieldId,

    // -- align + accumulate (MAU2-MAU4) --
    pub(crate) e_old: FieldId,
    pub(crate) d1: FieldId,
    pub(crate) d2: FieldId,
    pub(crate) bigger: FieldId,
    pub(crate) p_empty: Option<FieldId>,
    pub(crate) p_far: Option<FieldId>,
    pub(crate) wr: Option<FieldId>,
    pub(crate) man_shifted: FieldId,

    // -- read-out / renormalize (MAU5-MAU8) --
    pub(crate) man_r: FieldId,
    pub(crate) neg: FieldId,
    pub(crate) rz: FieldId,
    pub(crate) mag: FieldId,
    pub(crate) top: FieldId,
    pub(crate) shift_amt: FieldId,
    pub(crate) exp_field: FieldId,
    pub(crate) sub: FieldId,
    pub(crate) inf: FieldId,
    pub(crate) extra: FieldId,
    pub(crate) frac_shift: FieldId,
    pub(crate) fs_neg: FieldId,
    pub(crate) nfs: Option<FieldId>,
    pub(crate) sig_out: FieldId,
    pub(crate) exp_out: FieldId,
    pub(crate) t1: FieldId,
    pub(crate) t2: FieldId,
}

/// The two register arrays of Fig. 3.
#[derive(Debug, Clone, Copy)]
pub struct Arrays {
    /// Biased-exponent array (stage 2; 0 = empty slot).
    pub exponent: RegArrayId,
    /// Signed-mantissa array (stage 5).
    pub mantissa: RegArrayId,
}

const MAN_BITS: u64 = 23;
const FRAC_MASK: u64 = 0x7F_FFFF;
const IMPLIED_ONE: u64 = 0x80_0000;
const EXP_MASK: u64 = 0xFF;
const MAX_EXP_FIELD: i64 = 255;
/// Largest meaningful arithmetic right shift for a 32-bit register: the
/// core model clamps at `register_bits + 1`.
const MAX_RSHIFT: u32 = 33;

fn f(id: FieldId) -> Operand {
    Operand::Field(id)
}
fn c(v: i64) -> Operand {
    Operand::Const(v)
}

/// Build the Fig. 2 program for a variant and a slot count. The returned
/// program is guaranteed to validate against [`PipelineVariant::caps`].
pub fn build_program(variant: PipelineVariant, slots: usize) -> (SwitchProgram, Fields, Arrays) {
    assert!(
        slots > 0 && slots <= 1 << 16,
        "slot count must fit the 16-bit slot field"
    );
    let caps = variant.caps();
    let approx = variant.mode() == FpisaMode::Approximate;
    let headroom = variant.core_config().headroom_bits() as i64;

    let mut l = PhvLayout::new();
    let fields = Fields {
        op: l.field("op", 2),
        slot: l.field("slot", 16),
        value: l.field("value", 32),
        result: l.field("result", 32),
        skip: l.field("skip", 1),
        sign: l.field("sign", 1),
        e_in: l.field("e_in", 32),
        frac: l.field("frac", 32),
        sig: l.field("sig", 32),
        man_in: l.field("man_in", 32),
        e_in_mh: l.field("e_in_mh", 32),
        e_old: l.field("e_old", 32),
        d1: l.field("d1", 32),
        d2: l.field("d2", 32),
        bigger: l.field("bigger", 1),
        p_empty: approx.then(|| l.field("p_empty", 1)),
        p_far: approx.then(|| l.field("p_far", 1)),
        wr: approx.then(|| l.field("wr", 1)),
        man_shifted: l.field("man_shifted", 32),
        man_r: l.field("man_r", 32),
        neg: l.field("neg", 1),
        rz: l.field("rz", 1),
        mag: l.field("mag", 32),
        top: l.field("top", 8),
        shift_amt: l.field("shift_amt", 32),
        exp_field: l.field("exp_field", 32),
        sub: l.field("sub", 1),
        inf: l.field("inf", 1),
        extra: l.field("extra", 32),
        frac_shift: l.field("frac_shift", 32),
        fs_neg: l.field("fs_neg", 1),
        nfs: caps.metadata_shift.then(|| l.field("nfs", 32)),
        sig_out: l.field("sig_out", 32),
        exp_out: l.field("exp_out", 32),
        t1: l.field("t1", 32),
        t2: l.field("t2", 32),
    };
    let fd = &fields;

    let arrays = Arrays {
        exponent: RegArrayId(0),
        mantissa: RegArrayId(1),
    };
    let array_specs = vec![
        RegisterArraySpec {
            name: "exp_reg".into(),
            width_bits: 9,
            entries: slots,
            stage: 2,
        },
        RegisterArraySpec {
            name: "man_reg".into(),
            width_bits: 32,
            entries: slots,
            stage: 5,
        },
    ];

    // ---------------- Stage 0: parse / extract (MAU0) ----------------
    let extract = Action::nop("extract")
        .prim(fd.sign, AluOp::ShrLogic, f(fd.value), c(31))
        .prim(fd.e_in, AluOp::ShrLogic, f(fd.value), c(MAN_BITS as i64))
        .prim(fd.e_in, AluOp::And, f(fd.e_in), c(EXP_MASK as i64))
        .prim(fd.frac, AluOp::And, f(fd.value), c(FRAC_MASK as i64));
    let classify = Table::keyed(
        "classify",
        vec![(fd.e_in, MatchKind::Exact), (fd.frac, MatchKind::Exact)],
        vec![
            Action::nop("zero").set(fd.skip, c(1)),
            Action::nop("subnormal")
                .set(fd.sig, f(fd.frac))
                .set(fd.e_in, c(1)),
            Action::nop("normal").prim(fd.sig, AluOp::Or, f(fd.frac), c(IMPLIED_ONE as i64)),
        ],
        Some(2),
    )
    .entry(vec![KeyMatch::Exact(0), KeyMatch::Exact(0)], 2, 0)
    .entry(vec![KeyMatch::Exact(0), KeyMatch::Any], 1, 1);
    let stage0 = Stage::new()
        .table(Table::always("extract", extract))
        .table(classify);

    // ---------------- Stage 1: two's complement + headroom (MAU1) -----
    let apply_sign = Table::keyed(
        "apply_sign",
        vec![(fd.sign, MatchKind::Exact)],
        vec![
            Action::nop("negate").prim(fd.man_in, AluOp::Sub, c(0), f(fd.sig)),
            Action::nop("copy").set(fd.man_in, f(fd.sig)),
        ],
        Some(1),
    )
    .entry(vec![KeyMatch::Exact(1)], 1, 0);
    let prep = Action::nop("headroom").prim(fd.e_in_mh, AluOp::Sub, f(fd.e_in), c(headroom));
    let stage1 = Stage::new()
        .table(apply_sign)
        .table(Table::always("prep", prep));

    // ---------------- Stage 2: exponent stateful ALU (MAU2) ----------
    // Stored exponent 0 means "slot empty": every real value has a biased
    // exponent >= 1 (subnormals are installed with exponent 1).
    let exp_cond = if approx {
        // Install (empty) or overwrite (further than the headroom).
        SaluCond::Or(
            Box::new(SaluCond::RegCmp {
                cmp: CmpOp::Eq,
                rhs: c(0),
            }),
            Box::new(SaluCond::RegCmp {
                cmp: CmpOp::Lt,
                rhs: f(fd.e_in_mh),
            }),
        )
    } else {
        // Full FPISA: the exponent simply tracks the running maximum.
        SaluCond::RegCmp {
            cmp: CmpOp::Lt,
            rhs: f(fd.e_in),
        }
    };
    let exp_add = Action::nop("exp_add").call(StatefulCall {
        array: arrays.exponent,
        index: f(fd.slot),
        cond: exp_cond,
        on_true: SaluUpdate::Write(f(fd.e_in)),
        on_false: SaluUpdate::Keep,
        output: Some((fd.e_old, SaluOutput::Old)),
    });
    let exp_read = Action::nop("exp_read").call(StatefulCall {
        array: arrays.exponent,
        index: f(fd.slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::Keep,
        on_false: SaluUpdate::Keep,
        output: Some((fd.e_old, SaluOutput::Old)),
    });
    let exp_table = Table::keyed(
        "exponent",
        vec![(fd.op, MatchKind::Exact), (fd.skip, MatchKind::Exact)],
        vec![exp_add, exp_read],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_ADD), KeyMatch::Exact(0)], 1, 0)
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Any], 1, 1);
    let stage2 = Stage::new().table(exp_table);

    // ---------------- Stage 3: exponent difference (MAU2') -----------
    let mut delta = Action::nop("delta")
        .prim(fd.d1, AluOp::Sub, f(fd.e_old), f(fd.e_in))
        .prim(fd.d2, AluOp::Sub, f(fd.e_in), f(fd.e_old))
        .prim(fd.bigger, AluOp::CmpGt, f(fd.e_in), f(fd.e_old));
    if approx {
        let (p_empty, p_far, wr) = (fd.p_empty.unwrap(), fd.p_far.unwrap(), fd.wr.unwrap());
        delta = delta
            .prim(p_empty, AluOp::CmpEq, f(fd.e_old), c(0))
            .prim(p_far, AluOp::CmpLt, f(fd.e_old), f(fd.e_in_mh))
            .prim(wr, AluOp::Or, f(p_empty), f(p_far));
    }
    let delta_table = Table::keyed(
        "delta",
        vec![(fd.op, MatchKind::Exact), (fd.skip, MatchKind::Exact)],
        vec![delta],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_ADD), KeyMatch::Exact(0)], 1, 0);
    let stage3 = Stage::new().table(delta_table);

    // ---------------- Stage 4: align the incoming mantissa (MAU3) ----
    let stage4 = Stage::new().table(build_align_table(variant, fd));

    // ---------------- Stage 5: mantissa stateful ALU (MAU4) ----------
    let man_update = if approx {
        StatefulCall {
            array: arrays.mantissa,
            index: f(fd.slot),
            cond: SaluCond::MetaNonZero(fd.wr.unwrap()),
            // Install/overwrite takes the unshifted mantissa; otherwise a
            // saturating RAW add of the aligned one.
            on_true: SaluUpdate::Write(f(fd.man_in)),
            on_false: SaluUpdate::AddSat(f(fd.man_shifted)),
            output: None,
        }
    } else {
        StatefulCall {
            array: arrays.mantissa,
            index: f(fd.slot),
            cond: SaluCond::MetaNonZero(fd.bigger),
            // RSAW: align the *stored* value, then add the incoming one.
            on_true: SaluUpdate::ShiftRightAddSat {
                shift: f(fd.d2),
                addend: f(fd.man_in),
            },
            on_false: SaluUpdate::AddSat(f(fd.man_shifted)),
            output: None,
        }
    };
    let man_add = Action::nop("man_add").call(man_update);
    let man_read = Action::nop("man_read").call(StatefulCall {
        array: arrays.mantissa,
        index: f(fd.slot),
        cond: SaluCond::Always,
        on_true: SaluUpdate::Keep,
        on_false: SaluUpdate::Keep,
        output: Some((fd.man_r, SaluOutput::Old)),
    });
    let man_table = Table::keyed(
        "mantissa",
        vec![(fd.op, MatchKind::Exact), (fd.skip, MatchKind::Exact)],
        vec![man_add, man_read],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_ADD), KeyMatch::Exact(0)], 1, 0)
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Any], 1, 1);
    let stage5 = Stage::new().table(man_table);

    // ---------------- Stage 6: sign + magnitude (MAU5) ---------------
    let read_flags = Table::keyed(
        "read_flags",
        vec![(fd.op, MatchKind::Exact)],
        vec![Action::nop("flags")
            .prim(fd.neg, AluOp::CmpLt, f(fd.man_r), c(0))
            .prim(fd.rz, AluOp::CmpEq, f(fd.man_r), c(0))],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ)], 1, 0);
    let absval = Table::keyed(
        "absval",
        vec![(fd.op, MatchKind::Exact), (fd.neg, MatchKind::Exact)],
        vec![
            Action::nop("neg_mag").prim(fd.mag, AluOp::Sub, c(0), f(fd.man_r)),
            Action::nop("pos_mag").set(fd.mag, f(fd.man_r)),
        ],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(1)], 1, 0)
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(0)], 1, 1);
    let stage6 = Stage::new().table(read_flags).table(absval);

    // ---------------- Stage 7: leading-one via TCAM LPM (MAU6) -------
    // The Fig. 5 trick: 32 ternary entries, one per leading-one position.
    let mut lpm = Table::keyed(
        "find_top",
        vec![(fd.op, MatchKind::Exact), (fd.mag, MatchKind::Ternary)],
        (0..32u32)
            .map(|t| Action::nop(format!("top{t}")).set(fd.top, c(t as i64)))
            .collect(),
        None,
    );
    for t in 0..32u32 {
        let mask = (!((1u64 << t) - 1)) & 0xFFFF_FFFF;
        lpm = lpm.entry(
            vec![
                KeyMatch::Exact(OP_READ),
                KeyMatch::Ternary {
                    value: 1u64 << t,
                    mask,
                },
            ],
            t + 1,
            t as usize,
        );
    }
    let stage7 = Stage::new().table(lpm);

    // ---------------- Stage 8: renormalization arithmetic (MAU7) -----
    let norm = Table::keyed(
        "normalize",
        vec![(fd.op, MatchKind::Exact)],
        vec![Action::nop("norm")
            .prim(fd.shift_amt, AluOp::Sub, f(fd.top), c(MAN_BITS as i64))
            .prim(fd.exp_field, AluOp::Add, f(fd.e_old), f(fd.shift_amt))
            .prim(fd.sub, AluOp::CmpLt, f(fd.exp_field), c(1))
            .prim(fd.inf, AluOp::CmpGe, f(fd.exp_field), c(MAX_EXP_FIELD))
            .prim(fd.extra, AluOp::Sub, c(1), f(fd.exp_field))],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ)], 1, 0);
    let subsel = Table::keyed(
        "subnormal_select",
        vec![(fd.op, MatchKind::Exact), (fd.sub, MatchKind::Exact)],
        vec![
            Action::nop("normal_out")
                .set(fd.frac_shift, f(fd.shift_amt))
                .set(fd.exp_out, f(fd.exp_field))
                .prim(fd.fs_neg, AluOp::CmpLt, f(fd.frac_shift), c(0)),
            Action::nop("subnormal_out")
                .prim(fd.frac_shift, AluOp::Add, f(fd.shift_amt), f(fd.extra))
                .set(fd.exp_out, c(0))
                .prim(fd.fs_neg, AluOp::CmpLt, f(fd.frac_shift), c(0)),
        ],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(0)], 1, 0)
    .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(1)], 1, 1);
    let stage8 = Stage::new().table(norm).table(subsel);

    // ---------------- Stage 9: final mantissa shift (MAU8) -----------
    let mask_tbl = Table::keyed(
        "mask_frac",
        vec![(fd.op, MatchKind::Exact)],
        vec![Action::nop("mask").prim(fd.frac, AluOp::And, f(fd.sig_out), c(FRAC_MASK as i64))],
        None,
    )
    .entry(vec![KeyMatch::Exact(OP_READ)], 1, 0);
    let stage9 = Stage::new()
        .table(build_fracshift_table(variant, fd))
        .table(mask_tbl);

    // ---------------- Stage 10: pack (MAU8') --------------------------
    let pack = Table::keyed(
        "pack",
        vec![
            (fd.op, MatchKind::Exact),
            (fd.rz, MatchKind::Exact),
            (fd.inf, MatchKind::Exact),
        ],
        vec![
            Action::nop("pack_zero").set(fd.result, c(0)),
            Action::nop("pack_inf")
                .prim(fd.t1, AluOp::Shl, f(fd.neg), c(31))
                .prim(fd.result, AluOp::Or, f(fd.t1), c(0x7F80_0000)),
            Action::nop("pack_value")
                .prim(fd.t1, AluOp::Shl, f(fd.neg), c(31))
                .prim(fd.t2, AluOp::Shl, f(fd.exp_out), c(MAN_BITS as i64))
                .prim(fd.t1, AluOp::Or, f(fd.t1), f(fd.t2))
                .prim(fd.result, AluOp::Or, f(fd.t1), f(fd.frac)),
        ],
        None,
    )
    .entry(
        vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(1), KeyMatch::Any],
        3,
        0,
    )
    .entry(
        vec![
            KeyMatch::Exact(OP_READ),
            KeyMatch::Exact(0),
            KeyMatch::Exact(1),
        ],
        2,
        1,
    )
    .entry(
        vec![
            KeyMatch::Exact(OP_READ),
            KeyMatch::Exact(0),
            KeyMatch::Exact(0),
        ],
        1,
        2,
    );
    let stage10 = Stage::new().table(pack);

    let program = SwitchProgram {
        caps,
        layout: l,
        stages: vec![
            stage0, stage1, stage2, stage3, stage4, stage5, stage6, stage7, stage8, stage9, stage10,
        ],
        arrays: array_specs,
        recirc_field: None,
    };
    (program, fields, arrays)
}

/// Stage-4 alignment of the incoming mantissa (MAU3). On extended
/// hardware this is one action per path using metadata-distance shifts; on
/// Tofino it is the paper's shift-offset match table keyed on the exponent
/// difference, with one constant-shift action per distance.
fn build_align_table(variant: PipelineVariant, fd: &Fields) -> Table {
    let approx = variant.mode() == FpisaMode::Approximate;
    match variant {
        PipelineVariant::ExtendedA | PipelineVariant::ExtendedFull => {
            let mut keys = vec![(fd.op, MatchKind::Exact), (fd.skip, MatchKind::Exact)];
            if approx {
                keys.push((fd.wr.unwrap(), MatchKind::Exact));
            }
            keys.push((fd.bigger, MatchKind::Exact));
            let copy = Action::nop("keep_unshifted").set(fd.man_shifted, f(fd.man_in));
            let shr = Action::nop("shr_meta").prim(
                fd.man_shifted,
                AluOp::ShrArith,
                f(fd.man_in),
                f(fd.d1),
            );
            let mut t;
            if approx {
                let shl = Action::nop("shl_meta").prim(
                    fd.man_shifted,
                    AluOp::Shl,
                    f(fd.man_in),
                    f(fd.d2),
                );
                t = Table::keyed("align", keys, vec![copy, shr, shl], None)
                    // wr: the unshifted mantissa is written; shift is moot.
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(1),
                            KeyMatch::Any,
                        ],
                        3,
                        0,
                    )
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(1),
                        ],
                        2,
                        2,
                    )
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(0),
                        ],
                        1,
                        1,
                    );
            } else {
                // Full FPISA: a larger incoming exponent leaves the incoming
                // mantissa unshifted (the RSAW unit aligns the stored one).
                t = Table::keyed("align", keys, vec![copy, shr], None)
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(1),
                        ],
                        2,
                        0,
                    )
                    .entry(
                        vec![
                            KeyMatch::Exact(OP_ADD),
                            KeyMatch::Exact(0),
                            KeyMatch::Exact(0),
                        ],
                        1,
                        1,
                    );
            }
            t = t.with_capacity(8);
            t
        }
        PipelineVariant::TofinoA => {
            // No 2-operand shift: enumerate the shift distances as exact
            // matches on the (two's complement) exponent difference d2.
            let headroom = variant.core_config().headroom_bits();
            let mut actions: Vec<Action> = Vec::new();
            let mut t = Table::keyed(
                "align_shift_table",
                vec![
                    (fd.op, MatchKind::Exact),
                    (fd.skip, MatchKind::Exact),
                    (fd.bigger, MatchKind::Exact),
                    (fd.d2, MatchKind::Exact),
                ],
                Vec::new(),
                None,
            );
            // Left shifts: d2 in 1..=headroom (past that, wr takes over and
            // the shifted value is unused).
            for k in 1..=headroom {
                actions.push(Action::nop(format!("shl{k}")).prim(
                    fd.man_shifted,
                    AluOp::Shl,
                    f(fd.man_in),
                    c(k as i64),
                ));
            }
            // Right shifts: d2 = -k (mod 2^32) for k in 0..=MAX_RSHIFT.
            for k in 0..=MAX_RSHIFT {
                actions.push(Action::nop(format!("shr{k}")).prim(
                    fd.man_shifted,
                    AluOp::ShrArith,
                    f(fd.man_in),
                    c(k as i64),
                ));
            }
            // Distances past MAX_RSHIFT collapse to the sign fill, exactly
            // like the reference model's clamped barrel shifter.
            let default = actions.len();
            actions.push(Action::nop("shr_all").prim(
                fd.man_shifted,
                AluOp::ShrArith,
                f(fd.man_in),
                c(63),
            ));
            t.actions = actions;
            t.default_action = Some(default);
            for k in 1..=headroom {
                t = t.entry(
                    vec![
                        KeyMatch::Exact(OP_ADD),
                        KeyMatch::Exact(0),
                        KeyMatch::Exact(1),
                        KeyMatch::Exact(k as u64),
                    ],
                    2,
                    (k - 1) as usize,
                );
            }
            for k in 0..=MAX_RSHIFT {
                let d2 = (k as i64).wrapping_neg() as u64 & 0xFFFF_FFFF;
                t = t.entry(
                    vec![
                        KeyMatch::Exact(OP_ADD),
                        KeyMatch::Exact(0),
                        KeyMatch::Exact(0),
                        KeyMatch::Exact(d2),
                    ],
                    2,
                    headroom as usize + k as usize,
                );
            }
            t
        }
    }
}

/// Stage-9 renormalization shift: `sig_out = mag >> frac_shift` (or `<<`
/// for negative distances). Same table-vs-metadata split as stage 4.
fn build_fracshift_table(variant: PipelineVariant, fd: &Fields) -> Table {
    match variant {
        PipelineVariant::ExtendedA | PipelineVariant::ExtendedFull => {
            let nfs = fd.nfs.unwrap();
            Table::keyed(
                "frac_shift",
                vec![(fd.op, MatchKind::Exact), (fd.fs_neg, MatchKind::Exact)],
                vec![
                    Action::nop("shr_meta").prim(
                        fd.sig_out,
                        AluOp::ShrLogic,
                        f(fd.mag),
                        f(fd.frac_shift),
                    ),
                    Action::nop("shl_meta")
                        .prim(nfs, AluOp::Sub, c(0), f(fd.frac_shift))
                        .prim(fd.sig_out, AluOp::Shl, f(fd.mag), f(nfs)),
                ],
                None,
            )
            .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(0)], 1, 0)
            .entry(vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(1)], 1, 1)
            .with_capacity(4)
        }
        PipelineVariant::TofinoA => {
            let mut actions: Vec<Action> = Vec::new();
            let mut t = Table::keyed(
                "frac_shift_table",
                vec![(fd.op, MatchKind::Exact), (fd.frac_shift, MatchKind::Exact)],
                Vec::new(),
                None,
            );
            // Right shifts 0..=33 and left shifts 1..=31; anything past the
            // enumerated range shifts every bit out.
            for k in 0..=MAX_RSHIFT {
                actions.push(Action::nop(format!("shr{k}")).prim(
                    fd.sig_out,
                    AluOp::ShrLogic,
                    f(fd.mag),
                    c(k as i64),
                ));
            }
            for k in 1..=31u32 {
                actions.push(Action::nop(format!("shl{k}")).prim(
                    fd.sig_out,
                    AluOp::Shl,
                    f(fd.mag),
                    c(k as i64),
                ));
            }
            let default = actions.len();
            actions.push(Action::nop("shift_out").set(fd.sig_out, c(0)));
            t.actions = actions;
            t.default_action = Some(default);
            for k in 0..=MAX_RSHIFT {
                t = t.entry(
                    vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(k as u64)],
                    1,
                    k as usize,
                );
            }
            for k in 1..=31u32 {
                let v = (k as i64).wrapping_neg() as u64 & 0xFFFF_FFFF;
                t = t.entry(
                    vec![KeyMatch::Exact(OP_READ), KeyMatch::Exact(v)],
                    1,
                    MAX_RSHIFT as usize + k as usize,
                );
            }
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate_against_their_caps() {
        for v in PipelineVariant::all() {
            let (program, _, _) = build_program(v, 64);
            program.validate().unwrap_or_else(|e| panic!("{v:?}: {e}"));
            assert_eq!(program.stages.len(), 11);
        }
    }

    #[test]
    fn extended_programs_are_rejected_on_baseline_hardware() {
        for v in [PipelineVariant::ExtendedA, PipelineVariant::ExtendedFull] {
            let (mut program, _, _) = build_program(v, 4);
            program.caps = SwitchCaps::tofino();
            assert!(
                program.validate().is_err(),
                "{v:?} must need the extensions"
            );
        }
    }

    #[test]
    fn tofino_variant_uses_no_extension_features() {
        let (program, _, _) = build_program(PipelineVariant::TofinoA, 4);
        assert!(!program.caps.rsaw && !program.caps.metadata_shift);
        // Re-validating under explicitly baseline caps must also pass.
        let mut p = program;
        p.caps = SwitchCaps::tofino();
        p.validate().unwrap();
    }

    #[test]
    fn shift_tables_exist_only_on_tofino() {
        let (tof, _, _) = build_program(PipelineVariant::TofinoA, 4);
        let (ext, _, _) = build_program(PipelineVariant::ExtendedFull, 4);
        let entries = |p: &SwitchProgram| -> usize {
            p.stages
                .iter()
                .flat_map(|s| &s.tables)
                .map(|t| t.entries.len())
                .sum()
        };
        assert!(
            entries(&tof) > entries(&ext) + 30,
            "Tofino profile must pay for shifts in table entries ({} vs {})",
            entries(&tof),
            entries(&ext)
        );
    }
}
