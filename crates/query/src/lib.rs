//! # fpisa-query — distributed query processing (planned)
//!
//! Planned subsystem reproducing the paper's §6 query use case (Table 2,
//! Fig. 13): Cheetah/NetAccel-style in-switch pruning and aggregation over
//! floating-point columns, built on [`fpisa_core::SwitchComparator`] for
//! Top-N / group-by max-min pruning and on the pipeline accumulator for
//! in-switch SUM/AVG.
//!
//! Not implemented yet — see the "Open items" section of `ROADMAP.md`. The
//! crate intentionally exports nothing: it exists so the workspace layout
//! and dependency edges are fixed before the subsystem lands.
