//! # fpisa-train — data-parallel training harness (stub)
//!
//! Planned subsystem: synchronous data-parallel training with a pluggable
//! gradient-aggregation backend (exact host-side reduction, SwitchML-style
//! fixed point, FPISA-A, full FPISA) so the accuracy experiments of
//! Figs. 8 and 9 — does FPISA-A's bounded overwrite error change model
//! convergence? — can be reproduced on small models.
//!
//! Not implemented yet — see the "Open items" section of `ROADMAP.md`. The
//! crate exists so the workspace layout and dependency edges are fixed
//! before the subsystem lands.

#[doc(hidden)]
pub use fpisa_core as _core;
