//! # fpisa-train — data-parallel training harness (planned)
//!
//! Planned subsystem: synchronous data-parallel training with a pluggable
//! gradient-aggregation backend so the accuracy experiments of Figs. 8
//! and 9 — does FPISA-A's bounded overwrite error change model
//! convergence? — can be reproduced on small models. The backend interface
//! it will plug into is `fpisa_agg::Aggregator`, whose exact, SwitchML
//! fixed-point and FPISA implementations already exist; this crate adds
//! the model, the optimizer loop and the convergence metrics.
//!
//! Not implemented yet — see the "Open items" section of `ROADMAP.md`. The
//! crate intentionally exports nothing: it exists so the workspace layout
//! and dependency edges are fixed before the subsystem lands.
