//! Static analysis over every built-in pipeline cell: run the four-pass
//! analyzer (`fpisa::pisa::verify_program`) on all 18 differential cells
//! (3 variants × 3 formats × 2 guard/rounding configurations), show the
//! per-cell findings, and prove shard-partition safety for each.
//!
//! Exits nonzero if any cell has an analysis error or fails its
//! shard-safety proof, so CI can pin the "all built-ins analyze clean"
//! acceptance bar by running this example.
//!
//! ```sh
//! cargo run --release --example lint
//! ```

use fpisa::core::{FpFormat, ReadRounding};
use fpisa::hw::report::render_columns;
use fpisa::pipeline::{FpisaPipeline, PipelineSpec, PipelineVariant};
use fpisa::pisa::{prove_shard_safety, verify_program, Analyzer, HwProfile};

const SLOTS: usize = 16;

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut failures = 0usize;
    for variant in PipelineVariant::all() {
        for format in [FpFormat::FP32, FpFormat::FP16, FpFormat::BF16] {
            for (guard, rounding) in [
                (0, ReadRounding::TowardZero),
                (2, ReadRounding::NearestEven),
            ] {
                let spec = PipelineSpec::new(variant)
                    .format(format)
                    .guard_bits(guard)
                    .read_rounding(rounding)
                    .slots(SLOTS);
                let pipe = FpisaPipeline::from_spec(spec).expect("built-in spec must build");
                let report = verify_program(pipe.switch_program());
                let (e, w, i) = report.counts();
                let proof = prove_shard_safety(pipe.switch_program(), pipe.fields().slot);
                if e > 0 || proof.is_err() {
                    failures += 1;
                }
                let fname = match (format.exp_bits, format.man_bits) {
                    (8, 23) => "FP32",
                    (5, 10) => "FP16",
                    (8, 7) => "BF16",
                    _ => "custom",
                };
                rows.push(vec![
                    format!("{variant:?}/{fname}/g{guard}/{rounding:?}"),
                    e.to_string(),
                    w.to_string(),
                    i.to_string(),
                    if proof.is_ok() { "proven" } else { "UNPROVEN" }.to_string(),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_columns(
            &["cell", "errors", "warnings", "infos", "shard safety"],
            &rows
        )
    );

    // The same analyzer as a porting tool: lint the extended-hardware
    // program against the *stock* Tofino profile to see exactly which
    // capabilities the paper's proposal adds. These errors are expected —
    // they are the point — so they don't count as failures.
    let spec = PipelineSpec::new(PipelineVariant::ExtendedFull).slots(SLOTS);
    let pipe = FpisaPipeline::from_spec(spec).expect("built-in spec must build");
    let stock = Analyzer::new(pipe.switch_program())
        .with_profile(HwProfile::tofino())
        .run();
    println!("\nExtendedFull linted against stock `tofino` (expected gaps):");
    for d in stock.errors() {
        println!("  {d}");
    }

    if failures > 0 {
        eprintln!("\n{failures} cell(s) failed analysis");
        std::process::exit(1);
    }
    println!(
        "\nall {} cells analyze clean and prove shard safety",
        rows.len()
    );
}
