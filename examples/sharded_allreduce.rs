//! All-reduce through the **sharded** dataplane: a shard-count sweep of
//! the FPISA FP16 aggregation backend, verified bit-for-bit against the
//! single-core engine and timed per round.
//!
//! The slot space is partitioned into contiguous, chunk-aligned ranges —
//! one `CompiledSwitch` per range — and each round's packets are ingested
//! through `AggregationSwitch::ingest_batch`, which fans whole chunks out
//! across `std::thread::scope` workers with zero cross-shard locking.
//! Throughput scales with physical cores; correctness does not depend on
//! them (every row below is bit-identical to the 1-shard baseline).
//!
//! ```sh
//! cargo run --release --example sharded_allreduce
//! ```

use fpisa::agg::{AggregationSwitch, Aggregator, FpisaAggregator, GradientWorkload};
use fpisa::hw::report::render_columns;
use std::time::Instant;

const ROUNDS: u32 = 4;

fn main() {
    let workload = GradientWorkload {
        workers: 8,
        elements: 2048,
        elements_per_packet: 64,
        ..GradientWorkload::fig10(16)
    };
    let spec = workload.job_spec();
    let gradients = workload.generate();
    println!(
        "all-reduce: {} workers x {} elements ({} chunks of {}), {} rounds per shard count\n",
        spec.workers,
        spec.elements,
        spec.chunks(),
        spec.elements_per_packet,
        ROUNDS
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut baseline: Option<(Vec<f64>, f64)> = None;
    for shards in [1usize, 2, 4, 8] {
        let backend =
            FpisaAggregator::fp16_tofino_sharded(spec.elements, shards, spec.elements_per_packet)
                .expect("preset validates")
                .with_shadow_stats(false);
        let ranges = backend.pipeline().shard_ranges();
        let mut sw = AggregationSwitch::new(spec, backend).expect("job fits backend");
        let words: Vec<Vec<u64>> = gradients
            .iter()
            .map(|g| g.iter().map(|&x| sw.backend_mut().encode(x)).collect())
            .collect();

        let start = Instant::now();
        let mut sums = Vec::new();
        for round in 0..ROUNDS {
            let pkts: Vec<_> = words
                .iter()
                .enumerate()
                .flat_map(|(w, g)| spec.packetize(w as u32, round, g))
                .collect();
            let decisions = sw.ingest_batch(&pkts).expect("in-range slots");
            assert!(decisions.iter().all(|d| d.accepted()));
            sums = sw.read_all().expect("read");
            for chunk in 0..spec.chunks() {
                sw.finish_round(chunk).expect("reset");
            }
        }
        let ns_per_round = start.elapsed().as_nanos() as f64 / f64::from(ROUNDS);

        // Every shard count must reproduce the 1-shard sums bit for bit.
        let speedup = match &baseline {
            None => {
                baseline = Some((sums.clone(), ns_per_round));
                1.0
            }
            Some((want, base_ns)) => {
                assert_eq!(&sums, want, "{shards} shards diverged from 1 shard");
                base_ns / ns_per_round
            }
        };
        let slots_per_shard = ranges.iter().map(|r| r.len).max().unwrap_or(0);
        rows.push(vec![
            format!("{shards}"),
            format!("{}", ranges.len()),
            format!("{slots_per_shard}"),
            format!("{:.2}", ns_per_round / 1e6),
            format!(
                "{:.1}",
                (spec.workers as f64 * spec.elements as f64) / ns_per_round * 1e3
            ),
            format!("{speedup:.2}x"),
            "bit-exact".into(),
        ]);
    }

    println!(
        "{}",
        render_columns(
            &[
                "Shards",
                "Ranges",
                "Slots/shard",
                "ms/round",
                "Melem/s",
                "Speedup",
                "vs 1 shard",
            ],
            &rows,
        )
    );
    println!(
        "\n(Speedup tracks physical cores: on a single-core host the sweep verifies \
         correctness, not scaling.)"
    );
}
