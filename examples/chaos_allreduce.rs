//! All-reduce under an adversarial network: a fault sweep of the FPISA
//! FP16 backend through `fpisa-netsim`, asserting that loss, duplication,
//! reordering, corruption and a worker crash/restart never change the
//! aggregated sums — bit for bit — while a permanent worker death
//! degrades gracefully instead of hanging.
//!
//! Each scenario is a seeded `FaultPlan`; the whole table replays
//! exactly from the seeds below (no wall clock, no global RNG).
//!
//! ```sh
//! cargo run --release --example chaos_allreduce
//! ```

use fpisa::agg::FpisaAggregator;
use fpisa::hw::report::render_columns;
use fpisa::netsim::{run_allreduce, ChaosWorkload, FaultPlan, RunReport, SimConfig};

const SEED: u64 = 0xFA_57;

fn run(plan: FaultPlan, workload: &ChaosWorkload) -> RunReport {
    run_allreduce(
        workload.spec(1),
        FpisaAggregator::fp16_tofino(workload.elements).expect("preset validates"),
        &workload.gradients(),
        plan,
        SimConfig::default(),
    )
    .expect("simulation completes")
}

fn main() {
    let workload = ChaosWorkload {
        workers: 6,
        elements: 96,
        elements_per_packet: 32,
        rounds: 4,
        seed: SEED,
    };
    let spec = workload.spec(1);
    println!(
        "chaos all-reduce: {} workers x {} elements ({} chunks), {} rounds, FPISA FP16\n",
        spec.workers,
        spec.elements,
        spec.chunks(),
        workload.rounds
    );

    let clean = run(FaultPlan::lossless(SEED), &workload);
    assert_eq!(
        clean.results,
        ChaosWorkload::exact_sums(&workload.gradients()),
        "lossless run must equal the exact host sum"
    );
    let mid = clean.sim_ns * 2 / 5;

    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("lossless", FaultPlan::lossless(SEED)),
        ("loss10", FaultPlan::new(SEED).drop(0.10)),
        ("dup10", FaultPlan::new(SEED).duplicate(0.10)),
        ("reorder", FaultPlan::new(SEED).reorder(0.25, 60_000)),
        ("corrupt", FaultPlan::new(SEED).corrupt(0.15)),
        (
            "restart",
            FaultPlan::new(SEED)
                .drop(0.10)
                .crash(2, mid, Some(clean.sim_ns / 2)),
        ),
        (
            "the-works",
            FaultPlan::new(SEED)
                .drop(0.10)
                .duplicate(0.10)
                .reorder(0.10, 50_000)
                .corrupt(0.05)
                .straggler(1, 20_000)
                .crash(2, mid, Some(clean.sim_ns / 2)),
        ),
        ("dead-worker", FaultPlan::new(SEED).crash(4, mid, None)),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, plan) in scenarios {
        let report = run(plan, &workload);
        assert_eq!(report.incomplete_chunks, 0, "{label}: must never hang");
        if label == "dead-worker" {
            // Graceful degradation: later rounds complete without worker
            // 4 and say so; every other scenario is bit-exact.
            assert!(report.degraded_chunks > 0);
            assert!(report.shortfall.iter().all(|s| s.missing == vec![4]));
        } else {
            assert_eq!(
                report.results, clean.results,
                "{label}: sums must match the lossless run bit for bit"
            );
            assert_eq!(report.degraded_chunks, 0);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", report.sim_ns as f64 / 1e6),
            report.sent.to_string(),
            report.dropped.to_string(),
            report.duplicated.to_string(),
            report.corrupt_rejected.to_string(),
            report.retransmits.to_string(),
            report.timeouts.to_string(),
            format!("{}+{}", report.crashes, report.restarts),
            report.degraded_chunks.to_string(),
            if label == "dead-worker" {
                format!("degraded(-w4 x{})", report.shortfall.len())
            } else {
                "bit-exact".into()
            },
        ]);
    }

    println!(
        "{}",
        render_columns(
            &[
                "Scenario",
                "sim ms",
                "Sent",
                "Dropped",
                "Dup'd",
                "CRC rej",
                "Rtx",
                "Timeouts",
                "Crash+up",
                "Degraded",
                "vs lossless",
            ],
            &rows,
        )
    );
    println!(
        "\nEvery scenario replays exactly from its (seed, FaultPlan); \
         'bit-exact' is asserted, not observed."
    );
}
