//! All-reduce a synthetic gradient *inside the switch* and compare
//! backends: the Fig. 10 experiment as a runnable demo.
//!
//! N workers packetize their gradients (job id, worker id, round, chunk,
//! packed payload), the switch-side slot pool fans them in with duplicate
//! suppression, and each backend — SwitchML-style fixed point, FPISA-A
//! FP16 on Tofino, full FPISA FP32 — aggregates through its compiled PISA
//! program. Per-element relative error is measured against the exact f64
//! reference across increasingly wide gradient dynamic ranges.
//!
//! ```sh
//! cargo run --release --example allreduce
//! ```

use fpisa::agg::{
    encode_packet, render_fig10, run_fig10_sweep, AggregationSwitch, Aggregator, FpisaAggregator,
    GradientWorkload, IngestDecision,
};

fn main() {
    // A small end-to-end protocol walk-through first: 4 workers, one
    // switch, FP16 on the wire, with a retransmission thrown in.
    let workload = GradientWorkload {
        workers: 4,
        elements: 8,
        elements_per_packet: 4,
        ..GradientWorkload::fig10(12)
    };
    let spec = workload.job_spec();
    let gradients = workload.generate();
    let backend = FpisaAggregator::fp16_tofino(workload.elements).expect("spec validates");
    let mut switch = AggregationSwitch::new(spec, backend).expect("job fits backend");

    let mut wire_bytes = 0usize;
    for (worker, grad) in gradients.iter().enumerate() {
        let words: Vec<u64> = grad
            .iter()
            .map(|&x| switch.backend_mut().encode(x))
            .collect();
        for pkt in spec.packetize(worker as u32, 0, &words) {
            wire_bytes += encode_packet(&pkt, 2)
                .expect("FP16 words fit 2 bytes")
                .len();
            assert!(switch.ingest(&pkt).expect("in-range slots").accepted());
            // The network may deliver a retransmission: idempotently dropped.
            assert_eq!(
                switch.ingest(&pkt).expect("in-range slots"),
                IngestDecision::Duplicate
            );
        }
    }
    println!(
        "job {}: {} workers x {} elements, {} chunks, {} B on the wire (FP16)",
        spec.job,
        spec.workers,
        spec.elements,
        spec.chunks(),
        wire_bytes
    );
    let sums = switch.read_all().expect("in-range slots");
    println!("aggregated gradient: {sums:.4?}");
    let stats = switch.backend().stats();
    println!(
        "protocol: {:?}\nnumerics: {} adds, {} rounded, {} overwrites, {} clipped\n",
        switch.pool().stats(),
        stats.add.additions,
        stats.add.rounded,
        stats.add.overwrites,
        stats.clipped
    );

    // The Fig. 10 sweep: accuracy vs gradient dynamic range, every backend
    // behind the same packet protocol.
    println!("Fig. 10 — aggregation error vs gradient dynamic range (8 workers, 256 elements):\n");
    let rows = run_fig10_sweep(&[8, 16, 24]).expect("experiment runs");
    print!("{}", render_fig10(&rows));
    println!(
        "\nAt a narrow dynamic range the 31-bit fixed-point resolution wins;\n\
         as the range widens, SwitchML's global scaling factor starves small\n\
         elements while FPISA keeps per-element exponents — and full FPISA\n\
         (RSAW) tracks the exact f64 reference bit for bit."
    );
}
