//! Sum a stream of floats *inside the switch* and print what it cost.
//!
//! Runs the same stream through every pipeline variant (FPISA-A on
//! today's Tofino, FPISA-A with the proposed shift ALU, full FPISA with
//! RSAW) and through the host-side reference accumulator, then prints the
//! Table 3-style resource report.
//!
//! ```sh
//! cargo run --example pipeline_sum
//! ```

use fpisa::core::{ExactAccumulator, FpisaAccumulator};
use fpisa::pipeline::{render_table3, table3, FpisaPipeline, PipelineVariant};

fn main() {
    // A stream with a wide dynamic range: the interesting case, because it
    // forces alignment shifts and (in FPISA-A) overwrites.
    let stream: Vec<f32> = (0..64)
        .map(|i| {
            let mag = 2f32.powi((i * 7 % 24) - 12);
            let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
            sign * mag * (1.0 + (i as f32) / 64.0)
        })
        .collect();

    let mut exact = ExactAccumulator::new();
    for &x in &stream {
        exact.add_f32(x);
    }
    println!("exact (f64) sum:          {:>14.7}", exact.value());

    for variant in PipelineVariant::all() {
        let mut pipe = FpisaPipeline::new(variant, 1).expect("program must validate");
        let mut reference = FpisaAccumulator::new(pipe.core_config());
        for &x in &stream {
            pipe.add_f32(0, x).expect("finite input");
            reference.add_f32(x).expect("finite input");
        }
        let got = pipe.read_f32(0).expect("read packet");
        assert_eq!(
            got.to_bits(),
            reference.read_f32().to_bits(),
            "pipeline and reference model must agree bit-for-bit"
        );
        println!(
            "{:<25} {:>14.7}   (overwrites: {}, rounded: {})",
            variant.name(),
            got,
            reference.stats().overwrites,
            reference.stats().rounded,
        );
    }

    println!("\nTable 3 — switch resources for 1024 aggregation slots:\n");
    println!("{}", render_table3(&table3(1024)));
}
