//! Sum a stream of floats *inside the switch* and print what it cost.
//!
//! Runs the same stream through every pipeline variant (FPISA-A on
//! today's Tofino, FPISA-A with the proposed shift ALU, full FPISA with
//! RSAW) and through the host-side reference accumulator — for FP32 and,
//! via the `PipelineSpec` builder, for BF16 with guard bits and
//! round-to-nearest-even read-out — then prints the Table 3-style
//! resource report extended across the §3.3 formats.
//!
//! ```sh
//! cargo run --example pipeline_sum
//! ```

use fpisa::core::{ExactAccumulator, FpFormat, FpisaAccumulator, ReadRounding};
use fpisa::pipeline::{
    render_table3, table3_formats, FpisaPipeline, PipelineSpec, PipelineVariant,
};

fn main() {
    // A stream with a wide dynamic range: the interesting case, because it
    // forces alignment shifts and (in FPISA-A) overwrites.
    let stream: Vec<f32> = (0..64)
        .map(|i| {
            let mag = 2f32.powi((i * 7 % 24) - 12);
            let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
            sign * mag * (1.0 + (i as f32) / 64.0)
        })
        .collect();

    let mut exact = ExactAccumulator::new();
    for &x in &stream {
        exact.add_f32(x);
    }
    println!("exact (f64) sum:          {:>14.7}", exact.value());

    // FP32 (the paper's deployed configuration) and, through the spec
    // builder, BF16 with guard bits and nearest-even read-out (§3.3 /
    // Appendix A.1) — each checked bit-for-bit against the reference
    // model of the matching configuration.
    let specs: Vec<PipelineSpec> = PipelineVariant::all()
        .into_iter()
        .flat_map(|v| {
            [
                PipelineSpec::new(v).slots(1),
                PipelineSpec::new(v)
                    .format(FpFormat::BF16)
                    .guard_bits(2)
                    .read_rounding(ReadRounding::NearestEven)
                    .slots(1),
            ]
        })
        .collect();

    for spec in &specs {
        let mut pipe = FpisaPipeline::from_spec(*spec).expect("spec must validate");
        let format = pipe.core_config().format;
        let mut reference = FpisaAccumulator::new(pipe.core_config());
        for &x in &stream {
            // `add_value` quantizes to the wire format (a no-op for FP32).
            pipe.add_value(0, x as f64).expect("finite input");
            reference
                .add_bits(format.encode(x as f64))
                .expect("finite input");
        }
        let got = pipe.read_f64(0).expect("read packet");
        assert_eq!(
            pipe.read_bits(0).expect("read packet"),
            reference.read_bits(),
            "pipeline and reference model must agree bit-for-bit"
        );
        println!(
            "{:<36} {:>14.7}   (overwrites: {}, rounded: {})",
            spec.label(),
            got,
            reference.stats().overwrites,
            reference.stats().rounded,
        );
    }

    println!("\nTable 3 — switch resources for 1024 slots, across formats:\n");
    println!("{}", render_table3(&table3_formats(1024)));
}
