//! Offline shim for `serde_derive`.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal stand-in: `vendor/serde` defines `Serialize`/`Deserialize` as
//! marker traits with blanket impls, which means these derives have nothing
//! to generate — they only need to *exist* so `#[derive(Serialize,
//! Deserialize)]` attributes compile unchanged. `#[serde(...)]` helper
//! attributes are accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the shim trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the shim trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
