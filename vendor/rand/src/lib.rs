//! Offline shim for `rand`.
//!
//! The build environment cannot reach a crates registry, so this crate
//! stands in for `rand 0.8`. It implements the exact API surface the
//! workspace's tests and benches use — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — over a deterministic xoshiro256++ core. The
//! generator is seeded via SplitMix64, like the real `SmallRng`, so seeded
//! test streams are stable across runs (though not bit-identical to the
//! real crate's streams, which no test relies on).

use core::ops::{Range, RangeInclusive};

/// Low-level source of random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard distribution (`bool`,
    /// integers, unit-interval floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}
impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. `high` must be greater than `low`.
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans tests use.
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let unit: f32 = Standard::sample(rng);
        low + (high - low) * unit
    }
}
impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let unit: f64 = Standard::sample(rng);
        low + (high - low) * unit
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<u32> for RangeInclusive<u32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> u32 {
        let (lo, hi) = self.into_inner();
        let span = hi as u64 - lo as u64 + 1;
        lo + ((rng.next_u64() % span) as u32)
    }
}

impl SampleRange<i32> for RangeInclusive<i32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> i32 {
        let (lo, hi) = self.into_inner();
        let span = (hi as i64 - lo as i64 + 1) as u64;
        (lo as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> usize {
        let (lo, hi) = self.into_inner();
        let span = (hi - lo) as u64 + 1;
        lo + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> u64 {
        let (lo, hi) = self.into_inner();
        let span = hi
            .checked_sub(lo)
            .unwrap_or_else(|| panic!("gen_range: low > high"));
        match span.checked_add(1) {
            Some(span) => lo + rng.next_u64() % span,
            // Full-width range: every u64 is in it.
            None => rng.next_u64(),
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small-state generator (xoshiro256++), the shim's
    /// equivalent of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(0.25f32..1.5);
            assert!((0.25..1.5).contains(&x));
            let n: i32 = rng.gen_range(-12..12);
            assert!((-12..12).contains(&n));
            let m: u32 = rng.gen_range(3u32..=7);
            assert!((3..=7).contains(&m));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn bools_take_both_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!(trues > 400 && trues < 600, "biased bool: {trues}/1000");
    }
}
