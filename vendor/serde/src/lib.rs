//! Offline shim for `serde`.
//!
//! The build environment cannot reach a crates registry, so this crate
//! stands in for the real `serde`. Nothing in the workspace actually
//! serializes through serde yet (reports are rendered by hand, the bench
//! JSON is hand-formatted); the code only *derives* the traits and uses
//! them as bounds. The shim therefore keeps exactly that surface:
//!
//! * [`Serialize`] / [`Deserialize`] marker traits, blanket-implemented for
//!   every type, so trait bounds like `T: serde::Serialize` always hold;
//! * re-exported no-op derive macros from the vendored `serde_derive`, so
//!   `#[derive(Serialize, Deserialize)]` compiles unchanged.
//!
//! When a registry becomes reachable, point `[workspace.dependencies]
//! serde` back at crates.io and everything keeps compiling — the derives
//! then start generating real impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
