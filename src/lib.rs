//! # fpisa — umbrella crate
//!
//! Re-exports the whole FPISA reproduction workspace behind a single
//! dependency, so examples, integration tests and downstream users can write
//! `use fpisa::core::FpisaAccumulator` without naming the individual crates.
//!
//! The workspace reproduces *"Unlocking the Power of Inline Floating-Point
//! Operations on Programmable Switches"* (NSDI 2022):
//!
//! * [`core`] — the FPISA floating-point representation and arithmetic
//!   (decomposed exponent + signed mantissa, delayed renormalization,
//!   FPISA-A approximation).
//! * [`hw`] — the gate-level cost model behind Table 1 (default ALU vs.
//!   FPISA ALU vs. RAW/RSAW vs. hard FPU).
//! * [`pisa`] — a PISA programmable-switch simulator (parser, match-action
//!   units, tables, register arrays, resource accounting).
//! * [`pipeline`] — the FPISA dataflow of Fig. 2 compiled onto the switch
//!   simulator, plus the Table 3 resource report.
//! * [`netsim`] — a discrete-event host/network simulator with the end-host
//!   cost models (quantization, endianness, memcpy, GPU copies).
//! * [`agg`] — SwitchML-style and FPISA-style in-network gradient
//!   aggregation protocols (numeric and performance engines; Fig. 10).
//! * [`train`] — data-parallel training with pluggable aggregation
//!   (Figs. 7, 8, 9, 11).
//! * [`query`] — distributed query processing with in-switch pruning and
//!   aggregation over floating-point columns (Table 2, Fig. 13).
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use fpisa_agg as agg;
pub use fpisa_core as core;
pub use fpisa_hw as hw;
pub use fpisa_netsim as netsim;
pub use fpisa_pipeline as pipeline;
pub use fpisa_pisa as pisa;
pub use fpisa_query as query;
pub use fpisa_train as train;
